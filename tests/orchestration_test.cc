/**
 * @file
 * Orchestration contract of the cache-aware study: a campaign that is
 * killed mid-cell and resumed from its persisted shards -- by a fresh
 * process, at a different thread count, with a different shard split
 * -- produces cell summaries bit-identical to an uninterrupted
 * single-process run, and a report rendered purely from the stored
 * records is bit-identical to the live run's rendering.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.hh"
#include "core/study.hh"
#include "store/cell_key.hh"
#include "store/result_store.hh"
#include "support/logging.hh"

namespace {

using namespace etc;
using core::CellSummary;
using core::ErrorToleranceStudy;
using core::ProtectionMode;
using core::StudyConfig;

constexpr unsigned ERRORS = 3;
constexpr unsigned TRIALS = 24;

void
expectSummariesIdentical(const CellSummary &a, const CellSummary &b)
{
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i) {
        EXPECT_EQ(store::doubleBits(a.fidelities[i].value),
                  store::doubleBits(b.fidelities[i].value))
            << "fidelity " << i;
        EXPECT_EQ(a.fidelities[i].acceptable,
                  b.fidelities[i].acceptable);
    }
}

class OrchestrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        workload_ = workloads::createWorkload("adpcm",
                                              workloads::Scale::Test);
        root_ = std::filesystem::temp_directory_path() /
                ("etc_orch_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        std::filesystem::remove_all(root_);
    }

    void TearDown() override { std::filesystem::remove_all(root_); }

    StudyConfig
    config(unsigned threads, bool cached = true) const
    {
        StudyConfig config;
        config.threads = threads;
        if (cached)
            config.cacheDir = root_.string();
        return config;
    }

    /** The uninterrupted, uncached reference run (serial). */
    CellSummary
    reference()
    {
        ErrorToleranceStudy study(*workload_, config(1, false));
        return study.runCell(ERRORS, ProtectionMode::Protected, TRIALS);
    }

    std::unique_ptr<workloads::Workload> workload_;
    std::filesystem::path root_;
};

TEST_F(OrchestrationTest, CacheHitIsBitIdenticalAndRunsNothing)
{
    auto expected = reference();

    ErrorToleranceStudy first(*workload_, config(4));
    auto computed =
        first.runCell(ERRORS, ProtectionMode::Protected, TRIALS);
    expectSummariesIdentical(expected, computed);
    EXPECT_EQ(first.trialsExecuted(), TRIALS);

    // A fresh study over the same cache serves the cell from disk.
    ErrorToleranceStudy second(*workload_, config(2));
    auto cached =
        second.runCell(ERRORS, ProtectionMode::Protected, TRIALS);
    expectSummariesIdentical(expected, cached);
    EXPECT_EQ(second.trialsExecuted(), 0u);
}

TEST_F(OrchestrationTest, KillAndResumeIsBitIdentical)
{
    auto expected = reference();

    // Every (kill-point, resume-thread-count, original shard split)
    // combination must converge to the reference bits.
    for (unsigned split : {2u, 3u, 4u}) {
        for (unsigned doneBeforeKill = 0; doneBeforeKill < split;
             ++doneBeforeKill) {
            for (unsigned resumeThreads : {1u, 4u}) {
                std::filesystem::remove_all(root_);

                // "Run": persist the first doneBeforeKill chunks,
                // then die (simply stop calling; a SIGKILL mid-write
                // additionally relies on the store's atomic renames,
                // exercised by the CI smoke test).
                {
                    ErrorToleranceStudy study(*workload_, config(2));
                    for (unsigned c = 0; c < doneBeforeKill; ++c)
                        study.runCellShard(ERRORS,
                                           ProtectionMode::Protected,
                                           TRIALS, c, split);
                }

                // "Resume": a fresh process completes the cell.
                ErrorToleranceStudy resumed(
                    *workload_, config(resumeThreads));
                auto summary = resumed.runCell(
                    ERRORS, ProtectionMode::Protected, TRIALS);
                expectSummariesIdentical(expected, summary);

                // Only the missing stripe actually ran.
                unsigned alreadyDone =
                    static_cast<unsigned>(uint64_t{TRIALS} *
                                          doneBeforeKill / split);
                EXPECT_EQ(resumed.trialsExecuted(),
                          TRIALS - alreadyDone)
                    << "split " << split << " done " << doneBeforeKill;

                // The resumed cell was promoted to a full record and
                // its shards garbage-collected.
                auto *cache = resumed.resultStore();
                ASSERT_NE(cache, nullptr);
                auto key = resumed.cellKey(
                    ERRORS, ProtectionMode::Protected, TRIALS);
                EXPECT_TRUE(cache->hasCell(key));
                EXPECT_TRUE(cache->loadShards(key).empty());
            }
        }
    }
}

TEST_F(OrchestrationTest, ShardFanOutAcrossProcessesMerges)
{
    auto expected = reference();

    // Three "processes" each compute one stripe (out of order, at
    // different thread counts), a fourth merges via runCell.
    for (unsigned index : {2u, 0u, 1u}) {
        ErrorToleranceStudy worker(*workload_, config(index + 1));
        worker.runCellShard(ERRORS, ProtectionMode::Protected, TRIALS,
                            index, 3);
    }
    ErrorToleranceStudy merger(*workload_, config(4));
    auto merged =
        merger.runCell(ERRORS, ProtectionMode::Protected, TRIALS);
    expectSummariesIdentical(expected, merged);
    EXPECT_EQ(merger.trialsExecuted(), 0u);
}

TEST_F(OrchestrationTest, DuplicateShardRunsAreSkipped)
{
    ErrorToleranceStudy study(*workload_, config(2));
    study.runCellShard(ERRORS, ProtectionMode::Protected, TRIALS, 0, 2);
    auto ranOnce = study.trialsExecuted();
    EXPECT_EQ(ranOnce, TRIALS / 2);

    // Same stripe again: served from the stored shard record.
    auto again = study.runCellShard(ERRORS, ProtectionMode::Protected,
                                    TRIALS, 0, 2);
    EXPECT_EQ(study.trialsExecuted(), ranOnce);
    EXPECT_EQ(again.trials, TRIALS / 2);
}

TEST_F(OrchestrationTest, MismatchedSplitsStillConverge)
{
    auto expected = reference();

    // A killed 4-way run left stripes 0 and 2; the resume uses
    // runCell directly (no split knowledge). Stripe 2 overlaps the
    // prefix gap so it is discarded and recomputed -- converging to
    // the reference regardless.
    {
        ErrorToleranceStudy study(*workload_, config(1));
        study.runCellShard(ERRORS, ProtectionMode::Protected, TRIALS,
                           0, 4);
        study.runCellShard(ERRORS, ProtectionMode::Protected, TRIALS,
                           2, 4);
    }
    ErrorToleranceStudy resumed(*workload_, config(4));
    auto summary =
        resumed.runCell(ERRORS, ProtectionMode::Protected, TRIALS);
    expectSummariesIdentical(expected, summary);
}

TEST_F(OrchestrationTest, ReportPathRebuildsTheSameKeyWithoutSimulation)
{
    // Compute + persist through a study.
    ErrorToleranceStudy study(*workload_, config(2));
    auto computed =
        study.runCell(ERRORS, ProtectionMode::Protected, TRIALS);

    // The report path: key from static analysis only, summary from
    // disk, zero trials executed.
    auto cfg = config(1);
    auto protection = core::computeStudyProtection(*workload_, cfg);
    auto key = core::makeCellKey(*workload_, protection, cfg, ERRORS,
                                 ProtectionMode::Protected, TRIALS);
    store::ResultStore cache(cfg.cacheDir);
    auto loaded = cache.loadCell(key);
    ASSERT_TRUE(loaded.has_value());
    expectSummariesIdentical(computed, *loaded);
}

TEST_F(OrchestrationTest, KeysSeparateModesSeedsTrialsAndWorkloads)
{
    ErrorToleranceStudy study(*workload_, config(1));
    auto base = study.cellKey(ERRORS, ProtectionMode::Protected, TRIALS);
    EXPECT_FALSE(
        base ==
        study.cellKey(ERRORS, ProtectionMode::Unprotected, TRIALS));
    EXPECT_FALSE(
        base == study.cellKey(ERRORS + 1, ProtectionMode::Protected,
                              TRIALS));
    EXPECT_FALSE(
        base == study.cellKey(ERRORS, ProtectionMode::Protected,
                              TRIALS + 1));

    auto seeded = config(1);
    seeded.seed ^= 0x1234;
    ErrorToleranceStudy other(*workload_, seeded);
    EXPECT_FALSE(
        base == other.cellKey(ERRORS, ProtectionMode::Protected,
                              TRIALS));

    // Same workload name at a different scale -> different program
    // content -> different key (content addressing).
    auto bench = workloads::createWorkload("adpcm",
                                           workloads::Scale::Bench);
    ErrorToleranceStudy benchStudy(*bench, config(1, false));
    EXPECT_FALSE(base == benchStudy.cellKey(
                             ERRORS, ProtectionMode::Protected, TRIALS));
}

TEST_F(OrchestrationTest, RenderingFromStoredRecordsIsByteIdentical)
{
    // The "smoke" experiment end-to-end, in-process: live sweep
    // rendering vs. rendering from decoded records.
    const bench::Experiment *exp = bench::findExperiment("smoke");
    ASSERT_NE(exp, nullptr);
    bench::BenchOptions opts;
    opts.threads = 2;
    opts.cacheDir = root_.string();

    auto workload =
        workloads::createWorkload(exp->workload, exp->scale);
    auto cfg = bench::makeStudyConfig(*exp, opts);
    core::ErrorToleranceStudy study(*workload, cfg);
    auto points =
        bench::runSweep(*workload, study, makeSweepConfig(*exp, opts));

    testing::internal::CaptureStdout();
    bench::renderExperiment(*exp, exp->policies, points);
    std::string live = testing::internal::GetCapturedStdout();

    // Rebuild every point purely from the store.
    auto protection = core::computeStudyProtection(*workload, cfg);
    store::ResultStore cache(cfg.cacheDir);
    unsigned trials = opts.trialsOr(exp->defaultTrials);
    std::vector<bench::SweepPoint> stored;
    for (unsigned errors : exp->errorCounts) {
        bench::SweepPoint point;
        point.errors = errors;
        auto load = [&](const std::string &policy) {
            auto key =
                core::makeCellKey(*workload, protection, cfg, errors,
                                  policy, trials);
            auto summary = cache.loadCell(key);
            EXPECT_TRUE(summary.has_value());
            return summary ? *summary : CellSummary{};
        };
        for (const auto &policy : exp->policies)
            point.cells.push_back(load(policy));
        stored.push_back(std::move(point));
    }

    testing::internal::CaptureStdout();
    bench::renderExperiment(*exp, exp->policies, stored);
    std::string reported = testing::internal::GetCapturedStdout();
    EXPECT_EQ(live, reported);
}

} // namespace
