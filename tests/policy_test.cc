/**
 * @file
 * The injection-policy layer: registry semantics, policy-driven
 * bitmaps/plans/flips, policy-aware cell keys -- and the golden
 * regression pinning the legacy "protected"/"unprotected" policies to
 * the exact bits the pre-policy ProtectionMode implementation
 * produced (tallies, fidelity bits, CellKey canonicals/fingerprints,
 * and on-disk records), at 1 and 4 threads.
 *
 * The GOLDEN_* constants below were captured from the seed build
 * (before InjectionPolicy existed) and must never change: a
 * difference means stores written by earlier builds would be
 * silently orphaned or, worse, recomputed to different results.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/study.hh"
#include "fault/injection.hh"
#include "fault/policy.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using workloads::Scale;
using workloads::createWorkload;

// ---- golden constants (seed build, default StudyConfig) --------------------

struct GoldenCell
{
    const char *workload;
    unsigned errors;
    unsigned trials;
    const char *policy;
    const char *canonical;
    const char *fingerprint;
    unsigned completed;
    unsigned crashed;
    unsigned timedOut;
    uint64_t totalInstructions;
    uint64_t meanFidelityBits;
};

const GoldenCell GOLDEN_CELLS[] = {
    {"adpcm", 1, 12, "protected",
     "schema=1;workload=adpcm;mode=protected;errors=1;trials=12;"
     "seed=0xe77;budget_bits=0x4024000000000000;memory_model=lenient;"
     "program=0x483966ebc31fb296",
     "059ce62fa685c22e", 12, 0, 0, 402600, 0x3fe1955555555555ull},
    {"adpcm", 3, 12, "unprotected",
     "schema=1;workload=adpcm;mode=unprotected;errors=3;trials=12;"
     "seed=0xe77;budget_bits=0x4024000000000000;memory_model=lenient;"
     "program=0xc2593c3983189f69",
     "96fca977bf45d395", 11, 1, 0, 397318, 0x3fdfce8ba2e8ba2full},
    {"gsm", 4, 8, "protected",
     "schema=1;workload=gsm;mode=protected;errors=4;trials=8;"
     "seed=0xe77;budget_bits=0x4024000000000000;memory_model=lenient;"
     "program=0x55fe780e5c6a3724",
     "ebab561a4ad8bc81", 8, 0, 0, 283256, 0x403993ba45719849ull},
};

/** A complete cell record written by the seed build (pre-policy
 *  schema: no "policy" member in the key object). */
const char *OLD_SCHEMA_RECORD =
    R"({"schema":1,"kind":"cell","fingerprint":"96fca977bf45d395","key":{"workload":"adpcm","mode":"unprotected","errors":3,"trials":12,"seed":"0xe77","budget_bits":"0x4024000000000000","memory_model":"lenient","program":"0xc2593c3983189f69"}})"
    "\n"
    R"({"schema":1,"kind":"summary","trials":12,"completed":11,"crashed":1,"timed_out":0,"total_instructions":397318,"wall_seconds_bits":"0x3f4ea0383311133d","fidelities":11})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fdc600000000000","value":"0.443359375","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fc4000000000000","value":"0.15625","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fd1c00000000000","value":"0.27734375","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fdea00000000000","value":"0.478515625","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fe7600000000000","value":"0.73046875","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fe4e00000000000","value":"0.65234375","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fcf400000000000","value":"0.244140625","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fe3c00000000000","value":"0.6171875","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fe1000000000000","value":"0.53125","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3fd5800000000000","value":"0.3359375","acceptable":false,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"fidelity","bits":"0x3ff0000000000000","value":"1","acceptable":true,"unit":"fraction bytes correct"})"
    "\n"
    R"({"schema":1,"kind":"end","lines":14,"fnv":"0xd665e82826f171fb"})"
    "\n";

// ---- golden regression -----------------------------------------------------

TEST(GoldenLegacyTest, CanonicalKeysAndFingerprintsAreByteStable)
{
    for (const auto &golden : GOLDEN_CELLS) {
        auto workload = createWorkload(golden.workload, Scale::Test);
        core::StudyConfig config; // seed defaults, as captured
        auto protection =
            core::computeStudyProtection(*workload, config);
        auto key = core::makeCellKey(*workload, protection, config,
                                     golden.errors, golden.policy,
                                     golden.trials);
        EXPECT_EQ(key.canonical(), golden.canonical);
        EXPECT_EQ(key.fingerprint(), golden.fingerprint);
        EXPECT_TRUE(key.policyHash.empty());

        // The deprecated enum path builds the identical key.
        auto mode = std::string(golden.policy) == "protected"
                        ? core::ProtectionMode::Protected
                        : core::ProtectionMode::Unprotected;
        auto enumKey = core::makeCellKey(*workload, protection, config,
                                         golden.errors, mode,
                                         golden.trials);
        EXPECT_EQ(enumKey.canonical(), golden.canonical);
    }
}

TEST(GoldenLegacyTest, TalliesBitIdenticalToSeedAtOneAndFourThreads)
{
    for (const auto &golden : GOLDEN_CELLS) {
        for (unsigned threads : {1u, 4u}) {
            auto workload =
                createWorkload(golden.workload, Scale::Test);
            core::StudyConfig config;
            config.threads = threads;
            core::ErrorToleranceStudy study(*workload, config);
            auto cell = study.runCell(golden.errors, golden.policy,
                                      golden.trials);
            EXPECT_EQ(cell.completed, golden.completed)
                << golden.workload << " @" << threads << " threads";
            EXPECT_EQ(cell.crashed, golden.crashed);
            EXPECT_EQ(cell.timedOut, golden.timedOut);
            EXPECT_EQ(cell.totalInstructions,
                      golden.totalInstructions);
            EXPECT_EQ(store::doubleBits(cell.meanFidelity()),
                      golden.meanFidelityBits)
                << golden.workload << " @" << threads << " threads";
        }
    }
}

TEST(GoldenLegacyTest, EnumAliasAndPolicyNameProduceIdenticalCells)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    core::ErrorToleranceStudy byName(*workload, config);
    core::ErrorToleranceStudy byEnum(*workload, config);
    auto a = byName.runCell(3, "unprotected", 12);
    auto b = byEnum.runCell(3, core::ProtectionMode::Unprotected, 12);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i)
        EXPECT_EQ(store::doubleBits(a.fidelities[i].value),
                  store::doubleBits(b.fidelities[i].value));
    EXPECT_EQ(a.policy, "unprotected");
}

TEST(GoldenLegacyTest, OldSchemaRecordDecodes)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    auto protection = core::computeStudyProtection(*workload, config);
    auto key = core::makeCellKey(*workload, protection, config, 3,
                                 "unprotected", 12);

    auto summary = store::decodeCellRecord(OLD_SCHEMA_RECORD, &key);
    EXPECT_EQ(summary.policy, "unprotected");
    EXPECT_EQ(summary.trials, 12u);
    EXPECT_EQ(summary.completed, 11u);
    EXPECT_EQ(summary.crashed, 1u);
    EXPECT_EQ(summary.timedOut, 0u);
    EXPECT_EQ(summary.totalInstructions, 397318u);
    ASSERT_EQ(summary.fidelities.size(), 11u);
    EXPECT_EQ(store::doubleBits(summary.fidelities.back().value),
              0x3ff0000000000000ull);
}

TEST(GoldenLegacyTest, OldSchemaRecordServesFromTheStore)
{
    // A store directory populated by a pre-policy build keeps
    // serving: drop the verbatim old record under <root>/cells/ and
    // load it through a study with caching on -- the cell must come
    // back without a single simulated trial.
    auto root = std::filesystem::path(testing::TempDir()) /
                "policy_old_schema_store";
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root / "cells");
    {
        std::ofstream out(root / "cells" /
                          "96fca977bf45d395.jsonl",
                          std::ios::binary);
        out << OLD_SCHEMA_RECORD;
    }

    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    config.cacheDir = root.string();
    core::ErrorToleranceStudy study(*workload, config);
    auto cell = study.runCell(3, "unprotected", 12);
    EXPECT_EQ(study.trialsExecuted(), 0u);
    EXPECT_EQ(cell.completed, 11u);
    EXPECT_EQ(cell.crashed, 1u);
    std::filesystem::remove_all(root);
}

// ---- registry --------------------------------------------------------------

TEST(PolicyRegistryTest, BuiltinsArePresent)
{
    auto policies = fault::injectionPolicies();
    EXPECT_GE(policies.size(), 6u);
    for (const char *name :
         {"protected", "unprotected", "control-only", "data-only",
          "unprotected-regs", "protected-burst2",
          "unprotected-low16"})
        EXPECT_NE(fault::findInjectionPolicy(name), nullptr) << name;

    EXPECT_TRUE(
        fault::findInjectionPolicy("protected")->legacy);
    EXPECT_TRUE(
        fault::findInjectionPolicy("unprotected")->legacy);
    EXPECT_FALSE(
        fault::findInjectionPolicy("control-only")->legacy);
}

TEST(PolicyRegistryTest, ResolveUnknownNameListsKnownPolicies)
{
    try {
        fault::resolveInjectionPolicy("sideways");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        std::string what = error.what();
        EXPECT_NE(what.find("sideways"), std::string::npos);
        EXPECT_NE(what.find("protected"), std::string::npos);
    }
}

TEST(PolicyRegistryTest, RegisteredCustomPolicyParticipates)
{
    fault::InjectionPolicy custom;
    custom.name = "test-stores-only";
    custom.description = "stores only (registry unit test)";
    custom.scope = fault::TagScope::All;
    custom.resultKinds = fault::RK_MEMORY;
    fault::registerInjectionPolicy(custom);

    const auto *found = fault::findInjectionPolicy("test-stores-only");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->resultKinds, fault::RK_MEMORY);
    EXPECT_EQ(found->chartLabel, "test-stores-only"); // defaulted

    // Duplicate names and reserved flags are library bugs.
    EXPECT_THROW(fault::registerInjectionPolicy(custom), PanicError);
    fault::InjectionPolicy bogus = custom;
    bogus.name = "test-bogus-legacy";
    bogus.legacy = true;
    EXPECT_THROW(fault::registerInjectionPolicy(bogus), PanicError);
}

TEST(PolicyRegistryTest, DescriptionsMirrorRegistry)
{
    auto rows = fault::describeInjectionPolicies();
    auto policies = fault::injectionPolicies();
    ASSERT_EQ(rows.size(), policies.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].name, policies[i].name);
        EXPECT_EQ(rows[i].hash, policies[i].descriptorHashHex());
        EXPECT_EQ(rows[i].legacy, policies[i].legacy);
    }
    EXPECT_EQ(rows[0].scope, "tagged");
    EXPECT_EQ(rows[0].resultKinds, "register");
    EXPECT_EQ(rows[1].resultKinds, "register|memory|control");
}

TEST(PolicyRegistryTest, DescriptorHashTracksBehaviorNotProse)
{
    auto a = *fault::findInjectionPolicy("protected");
    auto b = a;
    b.name = "renamed";
    b.description = "other prose";
    EXPECT_EQ(a.descriptorHash(), b.descriptorHash());
    b.bitModel.burst = 2;
    b.bitModel.kind = fault::BitErrorModel::Kind::Burst;
    EXPECT_NE(a.descriptorHash(), b.descriptorHash());
    // ...but the seed salt does see the name: same-behavior policies
    // under different names draw independent streams.
    EXPECT_NE(a.seedSalt(), b.seedSalt());
}

// ---- policy-driven bitmaps, plans, flips -----------------------------------

TEST(PolicyBehaviorTest, BitmapsSliceResultKinds)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    const auto &program = workload->program();
    core::StudyConfig config;
    auto protection = core::computeStudyProtection(*workload, config);

    auto bitmapOf = [&](const char *name) {
        return fault::resolveInjectionPolicy(name).injectableBitmap(
            program, protection.tagged);
    };
    auto unprot = bitmapOf("unprotected");
    auto controlOnly = bitmapOf("control-only");
    auto dataOnly = bitmapOf("data-only");
    auto regsOnly = bitmapOf("unprotected-regs");

    size_t controlCount = 0;
    for (uint32_t i = 0; i < program.size(); ++i) {
        const auto &ins = program.code[i];
        EXPECT_EQ(controlOnly[i], ins.isControl());
        EXPECT_EQ(dataOnly[i],
                  ins.def().has_value() || ins.isStore());
        EXPECT_EQ(regsOnly[i], ins.def().has_value());
        // Every slice is a subset of the unprotected reach.
        EXPECT_LE(controlOnly[i], unprot[i]);
        EXPECT_LE(dataOnly[i], unprot[i]);
        controlCount += controlOnly[i];
    }
    EXPECT_GT(controlCount, 0u);

    // The legacy wrappers and the policy bitmaps agree exactly.
    EXPECT_EQ(bitmapOf("protected"),
              fault::injectableWithProtection(program,
                                              protection.tagged));
    EXPECT_EQ(unprot, fault::injectableWithoutProtection(program));
}

TEST(PolicyBehaviorTest, BurstModelFlipsAdjacentBits)
{
    fault::BitErrorModel model;
    model.kind = fault::BitErrorModel::Kind::Burst;
    model.burst = 2;
    Rng rng(42);
    auto plan = fault::samplePlan(10000, 64, model, rng);
    ASSERT_EQ(plan.masks.size(), 64u);
    for (uint32_t mask : plan.masks) {
        EXPECT_EQ(__builtin_popcount(mask), 2) << mask;
        // Adjacent modulo the 32-bit range: mask is m | rot(m).
        uint32_t low = mask & (~mask + 1);
        bool adjacent = (mask == (low | (low << 1))) ||
                        (mask == ((1u << 31) | 1u));
        EXPECT_TRUE(adjacent) << mask;
    }
}

TEST(PolicyBehaviorTest, BitRangeModelStaysInRange)
{
    fault::BitErrorModel model;
    model.hi = 16;
    Rng rng(7);
    auto plan = fault::samplePlan(10000, 64, model, rng);
    for (uint32_t mask : plan.masks) {
        EXPECT_NE(mask, 0u);
        EXPECT_EQ(mask & 0xffff0000u, 0u) << mask;
    }
}

TEST(PolicyBehaviorTest, LegacySingleFlipDrawsTheSeedStream)
{
    // The policy-model sampler must consume the RNG exactly like the
    // pre-policy samplePlan(count, errors, rng) did: same sites, and
    // one-hot masks at the historical bit draws.
    Rng a(123), b(123);
    auto legacy = fault::samplePlan(5000, 25, a);
    auto modeled =
        fault::samplePlan(5000, 25, fault::BitErrorModel{}, b);
    EXPECT_EQ(legacy.sites, modeled.sites);
    EXPECT_EQ(legacy.masks, modeled.masks);
}

TEST(PolicyBehaviorTest, NonLegacyKeysFoldThePolicyHash)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    auto protection = core::computeStudyProtection(*workload, config);

    auto prot = core::makeCellKey(*workload, protection, config, 3,
                                  "protected", 12);
    auto burst = core::makeCellKey(*workload, protection, config, 3,
                                   "protected-burst2", 12);
    // Same injectable bitmap -- the program hash agrees -- yet the
    // keys differ by name and descriptor hash.
    EXPECT_EQ(prot.programHash, burst.programHash);
    EXPECT_FALSE(prot == burst);
    EXPECT_TRUE(prot.policyHash.empty());
    EXPECT_FALSE(burst.policyHash.empty());
    EXPECT_NE(burst.canonical().find(";policy=0x"),
              std::string::npos);
    EXPECT_EQ(prot.canonical().find(";policy="), std::string::npos);
}

TEST(PolicyBehaviorTest, NonLegacyCellRunsAndPersistsEndToEnd)
{
    auto root = std::filesystem::path(testing::TempDir()) /
                "policy_e2e_store";
    std::filesystem::remove_all(root);

    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    config.threads = 2;
    config.cacheDir = root.string();

    core::CellSummary first;
    {
        core::ErrorToleranceStudy study(*workload, config);
        first = study.runCell(2, "control-only", 10);
        EXPECT_EQ(first.policy, "control-only");
        EXPECT_EQ(first.trials, 10u);
        EXPECT_EQ(first.completed + first.crashed + first.timedOut,
                  10u);
        EXPECT_GT(study.trialsExecuted(), 0u);
    }
    {
        // A fresh study serves the same cell from the store.
        core::ErrorToleranceStudy study(*workload, config);
        auto cached = study.runCell(2, "control-only", 10);
        EXPECT_EQ(study.trialsExecuted(), 0u);
        EXPECT_EQ(cached.policy, first.policy);
        EXPECT_EQ(cached.completed, first.completed);
        EXPECT_EQ(cached.crashed, first.crashed);
        EXPECT_EQ(cached.timedOut, first.timedOut);
        EXPECT_EQ(cached.totalInstructions, first.totalInstructions);
    }
    std::filesystem::remove_all(root);
}

TEST(PolicyBehaviorTest, UnknownPolicyNameIsFatal)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    core::StudyConfig config;
    core::ErrorToleranceStudy study(*workload, config);
    EXPECT_THROW(study.runCell(1, "sideways", 4), FatalError);
}

} // namespace
