/**
 * @file
 * Workload tests: every application builds, runs to completion on the
 * simulator, matches its host-side reference bit for bit, and scores
 * perfect fidelity against itself. Per-workload algorithmic checks
 * (cipher round trip, codec SNR, schedule optimality, recognition)
 * validate that the kernels implement the real algorithms, not stubs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/control_protection.hh"
#include "fidelity/metrics.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"
#include "workloads/adpcm.hh"
#include "workloads/art.hh"
#include "workloads/blowfish.hh"
#include "workloads/gsm.hh"
#include "workloads/mcf.hh"
#include "workloads/mpeg.hh"
#include "workloads/susan.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::workloads;

std::vector<uint8_t>
runGolden(const Workload &workload)
{
    sim::Simulator sim(workload.program());
    auto result = sim.run();
    EXPECT_TRUE(result.completed()) << workload.name() << ": "
                                    << result.toString();
    return sim.output();
}

// ---- generic per-workload checks (parameterized over all seven) ------------

class AllWorkloadsTest : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Workload> workload_ =
        createWorkload(GetParam(), Scale::Test);
};

TEST_P(AllWorkloadsTest, ProgramIsValidAndRuns)
{
    const auto &prog = workload_->program();
    prog.validate();
    EXPECT_GT(prog.size(), 0u);
    auto output = runGolden(*workload_);
    EXPECT_FALSE(output.empty());
}

TEST_P(AllWorkloadsTest, EligibleFunctionsExist)
{
    const auto &prog = workload_->program();
    for (const auto &name : workload_->eligibleFunctions())
        EXPECT_TRUE(prog.functionByName(name).has_value()) << name;
    EXPECT_FALSE(workload_->eligibleFunctions().empty());
}

TEST_P(AllWorkloadsTest, GoldenScoresPerfectFidelity)
{
    auto golden = runGolden(*workload_);
    auto score = workload_->scoreFidelity(golden, golden);
    EXPECT_TRUE(score.acceptable) << workload_->name();
    EXPECT_FALSE(score.unit.empty());
}

TEST_P(AllWorkloadsTest, AnalysisTagsSomethingButNotControl)
{
    auto config = analysis::ProtectionConfig{};
    config.eligibleFunctions = workload_->eligibleFunctions();
    auto result =
        analysis::computeControlProtection(workload_->program(), config);
    EXPECT_GT(result.numTagged, 0u) << workload_->name();
    // Tagged instructions are ALU by construction.
    for (uint32_t i = 0; i < workload_->program().size(); ++i)
        if (result.tagged[i]) {
            EXPECT_TRUE(workload_->program().code[i].isAlu());
        }
}

TEST_P(AllWorkloadsTest, DeterministicConstruction)
{
    auto again = createWorkload(GetParam(), Scale::Test);
    EXPECT_EQ(again->program().code, workload_->program().code);
    EXPECT_EQ(runGolden(*again), runGolden(*workload_));
}

INSTANTIATE_TEST_SUITE_P(
    AllSeven, AllWorkloadsTest,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(RegistryTest, UnknownNameFatal)
{
    EXPECT_THROW(createWorkload("doom"), FatalError);
}

TEST(RegistryTest, NamesMatchTable1Order)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "susan");
    EXPECT_EQ(names.back(), "art");
}

// ---- susan ------------------------------------------------------------------

TEST(SusanTest, MatchesReferenceBitExact)
{
    SusanWorkload susan(SusanWorkload::scaled(Scale::Test));
    EXPECT_EQ(runGolden(susan), susan.referenceOutput());
}

TEST(SusanTest, EdgeMapRespondsToEdges)
{
    SusanWorkload susan(SusanWorkload::scaled(Scale::Test));
    auto edges = susan.referenceOutput();
    unsigned nonzero = 0;
    for (uint8_t px : edges)
        if (px > 0)
            ++nonzero;
    // The shapes image has clear edges; a healthy fraction responds.
    EXPECT_GT(nonzero, edges.size() / 20);
    EXPECT_LT(nonzero, edges.size()); // and not everything
}

TEST(SusanTest, FidelityUsesPsnrThreshold)
{
    SusanWorkload susan(SusanWorkload::scaled(Scale::Test));
    auto golden = susan.referenceOutput();
    auto corrupted = golden;
    for (size_t i = 0; i < corrupted.size(); ++i)
        corrupted[i] = static_cast<uint8_t>(255 - corrupted[i]);
    auto bad = susan.scoreFidelity(golden, corrupted);
    EXPECT_FALSE(bad.acceptable);
    auto good = susan.scoreFidelity(golden, golden);
    EXPECT_TRUE(good.acceptable);
    EXPECT_GT(good.value, bad.value);
}

// ---- adpcm ------------------------------------------------------------------

TEST(AdpcmTest, MatchesReferenceBitExact)
{
    AdpcmWorkload adpcm(AdpcmWorkload::scaled(Scale::Test));
    EXPECT_EQ(runGolden(adpcm), adpcm.referenceOutput());
}

TEST(AdpcmTest, DecodedSignalTracksInput)
{
    AdpcmWorkload adpcm(AdpcmWorkload::scaled(Scale::Test));
    auto decodedBytes = adpcm.referenceOutput();
    auto decoded = fidelity::asInt16(decodedBytes);
    std::vector<int16_t> input = adpcm.input();
    ASSERT_EQ(decoded.size(), input.size());
    // IMA ADPCM on smooth speech should stay well above 10 dB.
    EXPECT_GT(fidelity::snrDb(input, decoded), 10.0);
}

// ---- blowfish ----------------------------------------------------------------

TEST(BlowfishTest, MatchesReferenceBitExact)
{
    BlowfishWorkload blowfish(BlowfishWorkload::scaled(Scale::Test));
    EXPECT_EQ(runGolden(blowfish), blowfish.referenceOutput());
}

TEST(BlowfishTest, RoundTripRecoversPlaintext)
{
    BlowfishWorkload blowfish(BlowfishWorkload::scaled(Scale::Test));
    auto output = blowfish.referenceOutput();
    const auto &text = blowfish.plaintext();
    ASSERT_EQ(output.size(), 2 * text.size());
    std::vector<uint8_t> plain(output.begin() +
                                   static_cast<long>(text.size()),
                               output.end());
    EXPECT_EQ(plain, text);
}

TEST(BlowfishTest, CipherActuallyScramblesText)
{
    BlowfishWorkload blowfish(BlowfishWorkload::scaled(Scale::Test));
    auto output = blowfish.referenceOutput();
    const auto &text = blowfish.plaintext();
    std::vector<uint8_t> cipher(output.begin(),
                                output.begin() +
                                    static_cast<long>(text.size()));
    // The ciphertext must differ from the plaintext almost everywhere.
    EXPECT_LT(fidelity::byteSimilarity(text, cipher), 0.05);
}

TEST(BlowfishTest, FidelityScoresPlaintextHalfOnly)
{
    BlowfishWorkload blowfish(BlowfishWorkload::scaled(Scale::Test));
    auto golden = blowfish.referenceOutput();
    auto corrupted = golden;
    corrupted[0] ^= 0xff; // corrupt ciphertext half only
    auto score = blowfish.scoreFidelity(golden, corrupted);
    EXPECT_DOUBLE_EQ(score.value, 1.0);
    corrupted = golden;
    corrupted[corrupted.size() - 1] ^= 0xff; // plaintext half
    score = blowfish.scoreFidelity(golden, corrupted);
    EXPECT_LT(score.value, 1.0);
}

// ---- gsm ---------------------------------------------------------------------

TEST(GsmTest, MatchesReferenceBitExact)
{
    GsmWorkload gsm(GsmWorkload::scaled(Scale::Test));
    EXPECT_EQ(runGolden(gsm), gsm.referenceOutput());
}

TEST(GsmTest, CodecPreservesSpeech)
{
    GsmWorkload gsm(GsmWorkload::scaled(Scale::Test));
    auto decoded = fidelity::asInt16(gsm.referenceOutput());
    std::vector<int16_t> input = gsm.input();
    ASSERT_EQ(decoded.size(), input.size());
    EXPECT_GT(fidelity::snrDb(input, decoded), 8.0);
}

// ---- mpeg ---------------------------------------------------------------------

TEST(MpegTest, MatchesReferenceBitExact)
{
    MpegWorkload mpeg(MpegWorkload::scaled(Scale::Test));
    EXPECT_EQ(runGolden(mpeg), mpeg.referenceOutput());
}

TEST(MpegTest, GopPattern)
{
    EXPECT_EQ(MpegWorkload::frameType(0), MpegWorkload::FrameType::I);
    EXPECT_EQ(MpegWorkload::frameType(1), MpegWorkload::FrameType::B);
    EXPECT_EQ(MpegWorkload::frameType(2), MpegWorkload::FrameType::B);
    EXPECT_EQ(MpegWorkload::frameType(3), MpegWorkload::FrameType::P);
    EXPECT_EQ(MpegWorkload::frameType(6), MpegWorkload::FrameType::P);
    EXPECT_EQ(MpegWorkload::frameType(7), MpegWorkload::FrameType::B);
}

TEST(MpegTest, BadFrameClassification)
{
    MpegWorkload mpeg(MpegWorkload::scaled(Scale::Test));
    auto golden = mpeg.referenceOutput();
    EXPECT_DOUBLE_EQ(mpeg.badFrameFraction(golden, golden), 0.0);
    // Destroy exactly one frame.
    auto corrupted = golden;
    size_t frameBytes = 16 * 12;
    for (size_t i = 0; i < frameBytes; ++i)
        corrupted[2 * frameBytes + i] ^= 0x80;
    double fraction = mpeg.badFrameFraction(golden, corrupted);
    EXPECT_NEAR(fraction, 1.0 / 6.0, 1e-9);
    auto score = mpeg.scoreFidelity(golden, corrupted);
    EXPECT_FALSE(score.acceptable); // > 10% bad frames
}

// ---- mcf ----------------------------------------------------------------------

TEST(McfTest, SolvesToHostOptimum)
{
    McfWorkload mcf(McfWorkload::scaled(Scale::Test));
    auto output = runGolden(mcf);
    auto solution = mcf.parseSolution(output);
    ASSERT_TRUE(solution.wellFormed);
    auto [flow, cost] = mcf.referenceOptimum();
    EXPECT_EQ(solution.flow, flow);
    EXPECT_EQ(solution.cost, cost);
    EXPECT_TRUE(mcf.feasible(solution));
    EXPECT_GT(flow, 0);
    EXPECT_GT(cost, 0);
}

TEST(McfTest, FeasibilityRejectsBadSchedules)
{
    McfWorkload mcf(McfWorkload::scaled(Scale::Test));
    auto output = runGolden(mcf);
    auto solution = mcf.parseSolution(output);
    ASSERT_TRUE(mcf.feasible(solution));

    auto overCapacity = solution;
    overCapacity.edgeFlows[0] =
        mcf.network().edges[0].capacity + 5;
    EXPECT_FALSE(mcf.feasible(overCapacity));

    auto negative = solution;
    negative.edgeFlows[0] = -1;
    EXPECT_FALSE(mcf.feasible(negative));

    McfWorkload::Solution malformed;
    EXPECT_FALSE(mcf.feasible(malformed));
}

TEST(McfTest, FidelityDetectsSuboptimalCost)
{
    McfWorkload mcf(McfWorkload::scaled(Scale::Test));
    auto golden = runGolden(mcf);
    auto good = mcf.scoreFidelity(golden, golden);
    EXPECT_TRUE(good.acceptable);
    EXPECT_DOUBLE_EQ(good.value, 0.0);

    // A truncated stream is an incomplete schedule.
    std::vector<uint8_t> truncated(golden.begin(), golden.begin() + 8);
    auto bad = mcf.scoreFidelity(golden, truncated);
    EXPECT_FALSE(bad.acceptable);
    EXPECT_DOUBLE_EQ(bad.value, 100.0);
}

// ---- art ----------------------------------------------------------------------

TEST(ArtTest, MatchesReferenceRecognition)
{
    ArtWorkload art(ArtWorkload::scaled(Scale::Test));
    auto output = runGolden(art);
    auto got = art.parseRecognition(output);
    auto ref = art.referenceRecognition();
    ASSERT_TRUE(got.wellFormed);
    EXPECT_EQ(got.bestWindow, ref.bestWindow);
    EXPECT_EQ(got.bestTemplate, ref.bestTemplate);
    EXPECT_NEAR(got.confidence, ref.confidence, 1e-4);
}

TEST(ArtTest, FindsTheEmbeddedTarget)
{
    ArtWorkload art(ArtWorkload::scaled(Scale::Test));
    auto rec = art.referenceRecognition();
    const auto &scene = art.scene();
    EXPECT_EQ(rec.bestTemplate,
              static_cast<int32_t>(scene.targetTemplate));
    // The best window must be exactly where the target was embedded.
    unsigned perRow = scene.width / 8;
    unsigned expected =
        (scene.targetY / 8) * perRow + scene.targetX / 8;
    EXPECT_EQ(rec.bestWindow, static_cast<int32_t>(expected));
    EXPECT_TRUE(rec.vigilancePassed);
    EXPECT_GT(rec.confidence, 0.8f);
}

TEST(ArtTest, FidelityRejectsWrongIdentification)
{
    ArtWorkload art(ArtWorkload::scaled(Scale::Test));
    auto golden = runGolden(art);
    auto good = art.scoreFidelity(golden, golden);
    EXPECT_TRUE(good.acceptable);

    // Forge a stream whose final record names the wrong template.
    auto forged = golden;
    size_t lastRecord = forged.size() - 16;
    forged[lastRecord + 4] ^= 0x01; // bestTemplate word
    auto bad = art.scoreFidelity(golden, forged);
    EXPECT_FALSE(bad.acceptable);
}

// ---- dynamic tagged fractions reproduce Table 3's spread --------------------

TEST(Table3ShapeTest, DataAppsHighControlAppsLow)
{
    auto taggedFraction = [](const std::string &name) {
        auto w = createWorkload(name, Scale::Test);
        analysis::ProtectionConfig config;
        config.eligibleFunctions = w->eligibleFunctions();
        auto protection =
            analysis::computeControlProtection(w->program(), config);
        sim::Simulator sim(w->program());
        sim::Profiler profiler(protection.tagged);
        EXPECT_TRUE(sim.run(0, &profiler).completed());
        return profiler.profile().taggedFraction();
    };
    double susan = taggedFraction("susan");
    double adpcm = taggedFraction("adpcm");
    double mcf = taggedFraction("mcf");
    double gsm = taggedFraction("gsm");
    // Table 3 ordering: susan/adpcm >> gsm > mcf.
    EXPECT_GT(susan, 0.75);
    EXPECT_GT(adpcm, 0.75);
    EXPECT_LT(mcf, 0.25);
    EXPECT_LT(gsm, 0.45);
    EXPECT_GT(susan, gsm);
    EXPECT_GT(adpcm, mcf);
}

} // namespace
