/**
 * @file
 * Tests for the extension modules: dominator tree, natural loops,
 * statistics helpers, and the Section 5.3 selective-protection
 * potential model.
 */

#include <gtest/gtest.h>

#include "analysis/dominators.hh"
#include "asm/builder.hh"
#include "core/potential.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::analysis;

// ---- dominators -----------------------------------------------------------

Program
diamondProgram()
{
    // 0: li, 1: beq -> 3, 2: li (then), 3: join li, 4: halt
    ProgramBuilder b;
    b.beginFunction("main");
    auto join = b.newLabel();
    b.li(REG_T0, 1);                   // 0
    b.beq(REG_T0, REG_ZERO, join);     // 1
    b.li(REG_T1, 2);                   // 2
    b.bind(join);
    b.li(REG_T2, 3);                   // 3
    b.halt();                          // 4
    b.endFunction();
    return b.finish();
}

TEST(DominatorTest, StraightLineChain)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 1);
    b.li(REG_T1, 2);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    EXPECT_EQ(doms.idom(0), DominatorTree::NONE);
    EXPECT_EQ(doms.idom(1), 0u);
    EXPECT_EQ(doms.idom(2), 1u);
    EXPECT_TRUE(doms.dominates(0, 2));
    EXPECT_TRUE(doms.dominates(2, 2)); // reflexive
    EXPECT_FALSE(doms.dominates(2, 0));
}

TEST(DominatorTest, DiamondJoinDominatedByBranch)
{
    auto prog = diamondProgram();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    // The join (3) is dominated by the branch (1), not the then-side.
    EXPECT_EQ(doms.idom(3), 1u);
    EXPECT_EQ(doms.idom(2), 1u);
    EXPECT_TRUE(doms.dominates(1, 4));
    EXPECT_FALSE(doms.dominates(2, 3));
}

TEST(DominatorTest, UnreachableNodes)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto end = b.newLabel();
    b.j(end);        // 0
    b.li(REG_T0, 9); // 1: unreachable
    b.bind(end);
    b.halt();        // 2
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    EXPECT_FALSE(doms.reachable(1));
    EXPECT_TRUE(doms.reachable(2));
    EXPECT_FALSE(doms.dominates(0, 1));
}

TEST(DominatorTest, BadEntryPanics)
{
    auto prog = diamondProgram();
    FlowGraph graph(prog, true);
    EXPECT_THROW(DominatorTree(graph, 999), PanicError);
}

// ---- natural loops -----------------------------------------------------------

TEST(LoopTest, SimpleCountedLoop)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 5);                // 0
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);     // 1: header
    b.bgtz(REG_T0, loop);           // 2: latch
    b.halt();                       // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    auto loops = findNaturalLoops(graph, doms);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header, 1u);
    EXPECT_EQ(loops[0].latch, 2u);
    EXPECT_EQ(loops[0].body, (std::vector<uint32_t>{1, 2}));
    EXPECT_TRUE(loops[0].contains(1));
    EXPECT_FALSE(loops[0].contains(0));
}

TEST(LoopTest, NestedLoops)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto outer = b.newLabel();
    auto inner = b.newLabel();
    b.li(REG_T0, 3);                // 0
    b.bind(outer);
    b.li(REG_T1, 4);                // 1: outer header
    b.bind(inner);
    b.addi(REG_T1, REG_T1, -1);     // 2: inner header
    b.bgtz(REG_T1, inner);          // 3: inner latch
    b.addi(REG_T0, REG_T0, -1);     // 4
    b.bgtz(REG_T0, outer);          // 5: outer latch
    b.halt();                       // 6
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    auto loops = findNaturalLoops(graph, doms);
    ASSERT_EQ(loops.size(), 2u);
    // Sort by body size: inner loop first.
    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.body.size() < b.body.size();
              });
    EXPECT_EQ(loops[0].header, 2u);
    EXPECT_EQ(loops[0].body, (std::vector<uint32_t>{2, 3}));
    EXPECT_EQ(loops[1].header, 1u);
    EXPECT_EQ(loops[1].body, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
}

TEST(LoopTest, NoLoopsInStraightLine)
{
    auto prog = diamondProgram();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);
    EXPECT_TRUE(findNaturalLoops(graph, doms).empty());
}

TEST(LoopTest, EveryWorkloadHasLoops)
{
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        FlowGraph graph(workload->program(), true);
        DominatorTree doms(graph, workload->program().entry);
        auto loops = findNaturalLoops(graph, doms);
        EXPECT_GT(loops.size(), 0u) << name;
        for (const auto &loop : loops) {
            EXPECT_TRUE(loop.contains(loop.header));
            EXPECT_TRUE(loop.contains(loop.latch));
            EXPECT_TRUE(doms.dominates(loop.header, loop.latch));
        }
    }
}

// ---- statistics -----------------------------------------------------------------

TEST(StatsTest, WilsonBasics)
{
    auto all = wilsonInterval(10, 10);
    EXPECT_DOUBLE_EQ(all.point, 1.0);
    EXPECT_LT(all.low, 1.0);
    EXPECT_DOUBLE_EQ(all.high, 1.0);

    auto none = wilsonInterval(0, 10);
    EXPECT_DOUBLE_EQ(none.point, 0.0);
    EXPECT_DOUBLE_EQ(none.low, 0.0);
    EXPECT_GT(none.high, 0.0);

    auto half = wilsonInterval(5, 10);
    EXPECT_DOUBLE_EQ(half.point, 0.5);
    EXPECT_LT(half.low, 0.5);
    EXPECT_GT(half.high, 0.5);
    // Wilson 95% interval for 5/10 is roughly [0.24, 0.76].
    EXPECT_NEAR(half.low, 0.237, 0.01);
    EXPECT_NEAR(half.high, 0.763, 0.01);
}

TEST(StatsTest, WilsonShrinksWithTrials)
{
    auto small = wilsonInterval(5, 10);
    auto large = wilsonInterval(500, 1000);
    EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(StatsTest, WilsonDegenerateAndErrors)
{
    auto empty = wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(empty.low, 0.0);
    EXPECT_DOUBLE_EQ(empty.high, 1.0);
    EXPECT_THROW(wilsonInterval(5, 4), PanicError);
}

TEST(StatsTest, MeanAndStdDev)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(sampleStdDev({5.0}), 0.0);
    EXPECT_NEAR(sampleStdDev({2.0, 4.0, 6.0}), 2.0, 1e-12);
}

// ---- potential model --------------------------------------------------------------

TEST(PotentialTest, KnownFractions)
{
    sim::DynamicProfile profile;
    profile.total = 100;
    profile.tagged = 90;
    core::ReliabilityCostModel tmr{"TMR", 3.0, 1.0};
    auto estimate = core::estimatePotential(profile, tmr);
    EXPECT_DOUBLE_EQ(estimate.taggedFraction, 0.9);
    EXPECT_DOUBLE_EQ(estimate.uniformCost, 3.0);
    // 0.1 * 3 + 0.9 * 1 = 1.2.
    EXPECT_DOUBLE_EQ(estimate.selectiveCost, 1.2);
    EXPECT_DOUBLE_EQ(estimate.speedup(), 2.5);
    EXPECT_DOUBLE_EQ(estimate.savings(), 0.6);
}

TEST(PotentialTest, NoTaggingNoBenefit)
{
    sim::DynamicProfile profile;
    profile.total = 100;
    profile.tagged = 0;
    core::ReliabilityCostModel tmr{"TMR", 3.0, 1.0};
    auto estimate = core::estimatePotential(profile, tmr);
    EXPECT_DOUBLE_EQ(estimate.speedup(), 1.0);
    EXPECT_DOUBLE_EQ(estimate.savings(), 0.0);
}

TEST(PotentialTest, CheapSiliconHelps)
{
    sim::DynamicProfile profile;
    profile.total = 10;
    profile.tagged = 5;
    core::ReliabilityCostModel plain{"a", 3.0, 1.0};
    core::ReliabilityCostModel cheap{"b", 3.0, 0.5};
    EXPECT_GT(core::estimatePotential(profile, cheap).speedup(),
              core::estimatePotential(profile, plain).speedup());
}

TEST(PotentialTest, BadModelsRejected)
{
    sim::DynamicProfile profile;
    profile.total = 10;
    profile.tagged = 5;
    core::ReliabilityCostModel underOne{"x", 0.5, 0.4};
    EXPECT_THROW(core::estimatePotential(profile, underOne),
                 FatalError);
    core::ReliabilityCostModel negative{"y", 3.0, -1.0};
    EXPECT_THROW(core::estimatePotential(profile, negative),
                 FatalError);
    core::ReliabilityCostModel inverted{"z", 2.0, 2.5};
    EXPECT_THROW(core::estimatePotential(profile, inverted),
                 FatalError);
}

TEST(PotentialTest, StandardModelsAreSane)
{
    for (const auto &model : core::standardCostModels()) {
        EXPECT_GE(model.protectionOverhead, 1.0) << model.name;
        EXPECT_GT(model.lowReliabilityCost, 0.0) << model.name;
        EXPECT_FALSE(model.name.empty());
    }
    EXPECT_GE(core::standardCostModels().size(), 3u);
}

/** Property: dominator facts agree with an independent reachability
 *  check on random programs (removing a dominator disconnects). */
class DominatorPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DominatorPropertyTest, RemovalDisconnects)
{
    Rng rng(GetParam());
    ProgramBuilder b;
    b.beginFunction("main");
    std::vector<Label> labels;
    for (int i = 0; i < 3; ++i)
        labels.push_back(b.newLabel());
    for (int block = 0; block < 3; ++block) {
        for (int i = 0; i < 4; ++i)
            b.addi(REG_T0, REG_T0,
                   static_cast<int32_t>(rng.range(-5, 5)));
        b.bne(REG_T0, REG_ZERO,
              labels[rng.below(labels.size())]);
        b.bind(labels[block]);
    }
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    DominatorTree doms(graph, 0);

    // Independent check: if a dominates b (a != b, a != entry), then
    // every path 0 -> b passes a; verify with a BFS avoiding a.
    auto reachableAvoiding = [&](uint32_t target, uint32_t avoid) {
        std::vector<bool> seen(graph.size(), false);
        std::vector<uint32_t> stack = {0};
        seen[0] = true;
        while (!stack.empty()) {
            uint32_t node = stack.back();
            stack.pop_back();
            if (node == target)
                return true;
            for (uint32_t s : graph.successors(node)) {
                if (s != avoid && !seen[s]) {
                    seen[s] = true;
                    stack.push_back(s);
                }
            }
        }
        return false;
    };
    for (uint32_t node = 1; node < prog.size(); ++node) {
        if (!doms.reachable(node))
            continue;
        uint32_t dominator = doms.idom(node);
        if (dominator == DominatorTree::NONE || dominator == 0)
            continue;
        EXPECT_FALSE(reachableAvoiding(node, dominator))
            << "idom(" << node << ") = " << dominator
            << " but a path avoids it";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DominatorPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

} // namespace
