/**
 * @file
 * Tests for the dataflow analysis layer: flow graph, liveness,
 * reaching definitions, def-use chains, and -- centrally -- the CVar
 * control-protection analysis, including the paper's Section 3 worked
 * example reproduced instruction for instruction.
 */

#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "analysis/control_protection.hh"
#include "analysis/defuse.hh"
#include "analysis/flowgraph.hh"
#include "analysis/liveness.hh"
#include "analysis/reaching.hh"
#include "asm/builder.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::analysis;

// ---- flow graph ----------------------------------------------------------

TEST(FlowGraphTest, StraightLine)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 1);
    b.addi(REG_T0, REG_T0, 1);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    EXPECT_EQ(graph.successors(0), std::vector<uint32_t>{1});
    EXPECT_EQ(graph.successors(1), std::vector<uint32_t>{2});
    EXPECT_TRUE(graph.successors(2).empty()); // halt
    EXPECT_EQ(graph.predecessors(1), std::vector<uint32_t>{0});
    EXPECT_EQ(graph.blocks().size(), 1u);
}

TEST(FlowGraphTest, BranchSplitsBlocks)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto target = b.newLabel();
    b.li(REG_T0, 1);                 // 0
    b.beq(REG_T0, REG_ZERO, target); // 1
    b.li(REG_T1, 2);                 // 2
    b.bind(target);
    b.halt();                        // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto succ = graph.successors(1);
    EXPECT_EQ(succ, (std::vector<uint32_t>{2, 3}));
    EXPECT_EQ(graph.blocks().size(), 3u); // [0,2) [2,3) [3,4)
    EXPECT_EQ(graph.blockOf(0), graph.blockOf(1));
    EXPECT_NE(graph.blockOf(1), graph.blockOf(2));
}

TEST(FlowGraphTest, LoopBackEdge)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 5);                 // 0
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);      // 1
    b.bgtz(REG_T0, loop);            // 2
    b.halt();                        // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    EXPECT_EQ(graph.successors(2), (std::vector<uint32_t>{1, 3}));
    EXPECT_EQ(graph.predecessors(1), (std::vector<uint32_t>{0, 2}));
}

TEST(FlowGraphTest, InterproceduralCallAndReturnEdges)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("leaf");          // 0
    b.halt();                // 1
    b.endFunction();
    b.beginFunction("leaf");
    b.li(REG_V0, 7);         // 2
    b.ret();                 // 3
    b.endFunction();
    auto prog = b.finish();

    FlowGraph inter(prog, true);
    EXPECT_EQ(inter.successors(0), std::vector<uint32_t>{2}); // call edge
    EXPECT_EQ(inter.successors(3), std::vector<uint32_t>{1}); // return edge

    FlowGraph intra(prog, false);
    EXPECT_EQ(intra.successors(0), std::vector<uint32_t>{1}); // fallthrough
    EXPECT_TRUE(intra.successors(3).empty());                 // exit
}

TEST(FlowGraphTest, MultipleReturnSites)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("leaf");          // 0
    b.call("leaf");          // 1
    b.halt();                // 2
    b.endFunction();
    b.beginFunction("leaf");
    b.ret();                 // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    EXPECT_EQ(graph.successors(3), (std::vector<uint32_t>{1, 2}));
}

// ---- liveness -----------------------------------------------------------

TEST(LivenessTest, SimpleChain)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 1);                  // 0: def t0
    b.addi(REG_T1, REG_T0, 2);        // 1: use t0, def t1
    b.outw(REG_T1);                   // 2: use t1
    b.halt();                         // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto live = computeLiveness(prog, graph);
    EXPECT_TRUE(live.liveOut[0].test(REG_T0));
    EXPECT_FALSE(live.liveOut[1].test(REG_T0)); // dead after last use
    EXPECT_TRUE(live.liveOut[1].test(REG_T1));
    EXPECT_FALSE(live.liveOut[2].test(REG_T1));
    EXPECT_FALSE(live.liveIn[0].test(REG_T0)); // defined here
}

TEST(LivenessTest, LoopKeepsCounterLive)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 5);                  // 0
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);       // 1
    b.bgtz(REG_T0, loop);             // 2
    b.halt();                         // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto live = computeLiveness(prog, graph);
    // The counter is live around the whole loop.
    EXPECT_TRUE(live.liveIn[1].test(REG_T0));
    EXPECT_TRUE(live.liveOut[2].test(REG_T0)); // back edge keeps it live
}

TEST(LivenessTest, ZeroRegisterNeverLive)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto lbl = b.newLabel();
    b.bind(lbl);
    b.beq(REG_ZERO, REG_ZERO, lbl);
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto live = computeLiveness(prog, graph);
    EXPECT_FALSE(live.liveIn[0].test(REG_ZERO));
}

// ---- reaching definitions --------------------------------------------------

TEST(ReachingTest, KillAndMerge)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto other = b.newLabel();
    auto join = b.newLabel();
    b.li(REG_T0, 1);                  // 0: def A of t0
    b.beq(REG_A0, REG_ZERO, other);   // 1
    b.li(REG_T0, 2);                  // 2: def B of t0 (kills A)
    b.j(join);                        // 3
    b.bind(other);
    b.nop();                          // 4
    b.bind(join);
    b.outw(REG_T0);                   // 5: A reaches via 4, B via 3
    b.halt();                         // 6
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto reaching = computeReaching(prog, graph);
    EXPECT_TRUE(reaching.reaches(0, 5));  // def A via the nop path
    EXPECT_TRUE(reaching.reaches(2, 5));  // def B via the join
    EXPECT_FALSE(reaching.reaches(0, 3)); // killed by def B at 2
}

TEST(ReachingTest, LoopCarriedDefinition)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 5);                  // 0
    b.bind(loop);
    b.addi(REG_T0, REG_T0, -1);       // 1: def reaches itself (loop)
    b.bgtz(REG_T0, loop);             // 2
    b.halt();                         // 3
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto reaching = computeReaching(prog, graph);
    EXPECT_TRUE(reaching.reaches(0, 1));
    EXPECT_TRUE(reaching.reaches(1, 1)); // around the back edge
}

TEST(DefUseTest, ChainsMatchReaching)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 3);                  // 0
    b.addi(REG_T1, REG_T0, 1);        // 1: uses def 0
    b.add(REG_T2, REG_T0, REG_T1);    // 2: uses defs 0 and 1
    b.outw(REG_T2);                   // 3
    b.halt();                         // 4
    b.endFunction();
    auto prog = b.finish();
    FlowGraph graph(prog, true);
    auto reaching = computeReaching(prog, graph);
    auto chains = computeDefUse(prog, reaching);
    ASSERT_EQ(chains.usesOf[0].size(), 2u);
    EXPECT_EQ(chains.usesOf[0][0], (Use{1, REG_T0}));
    EXPECT_EQ(chains.usesOf[0][1], (Use{2, REG_T0}));
    ASSERT_EQ(chains.usesOf[1].size(), 1u);
    EXPECT_EQ(chains.usesOf[1][0], (Use{2, REG_T1}));
    ASSERT_EQ(chains.usesOf[2].size(), 1u);
}

// ---- the paper's worked example (Section 3) ---------------------------------

/**
 * Reconstructs the paper's basic blocks BB0/BB1 literally:
 *
 *   I0: $2  = $4 + 1        *  (tagged)
 *   I1: LD $3, addr []
 *   I2: $2  = $3 + 2        [$3]
 *   I3: $3  = $3 + 8        [$3, $2]
 *   I4: $10 = $8 - $4       [$3, $2]  * (tagged)
 *   I5: $10 = $3 << $2      [$3, $2]
 *   I6: $4  = $3 + $6       [$3, $10] * (tagged)
 *   I7: $3  = $3 + 1        [$3, $10]
 *   I8: BNE $3, $10, label  [$3, $10]
 *
 * The bracketed sets are CVar *before* each instruction (the paper
 * prints them after processing, walking upward). The tagged set must
 * be exactly {I0, I4, I6}.
 */
class PaperExampleTest : public ::testing::Test
{
  protected:
    Program
    build()
    {
        ProgramBuilder b;
        b.dataWords("addr", {0});
        b.beginFunction("main");
        auto label = b.newLabel();
        b.addi(2, 4, 1);                         // I0
        b.lw(3, 0, REG_ZERO);                    // I1: absolute load
        b.addi(2, 3, 2);                         // I2
        b.addi(3, 3, 8);                         // I3
        b.sub(10, 8, 4);                         // I4
        b.sllv(10, 3, 2);                        // I5
        b.add(4, 3, 6);                          // I6
        b.addi(3, 3, 1);                         // I7
        b.bne(3, 10, label);                     // I8
        b.bind(label);
        b.halt();                                // I9
        b.endFunction();
        return b.finish();
    }
};

TEST_F(PaperExampleTest, TagsExactlyI0I4I6)
{
    auto prog = build();
    ProtectionConfig config; // paper defaults
    auto result = computeControlProtection(prog, config);

    std::vector<bool> expected(prog.size(), false);
    expected[0] = true; // I0
    expected[4] = true; // I4
    expected[6] = true; // I6
    EXPECT_EQ(result.tagged, expected);
    EXPECT_EQ(result.numTagged, 3u);
}

TEST_F(PaperExampleTest, CVarSetsMatchThePaper)
{
    auto prog = build();
    auto result = computeControlProtection(prog, ProtectionConfig{});

    auto set = [](std::initializer_list<int> regs) {
        LocSet s;
        for (int r : regs)
            s.set(static_cast<size_t>(r));
        return s;
    };
    // CVar before each instruction, exactly as printed in the paper.
    EXPECT_EQ(result.cvarIn[0], set({}));        // before I0 (empty)
    EXPECT_EQ(result.cvarIn[1], set({}));        // I1 empties CVar
    EXPECT_EQ(result.cvarIn[2], set({3}));
    EXPECT_EQ(result.cvarIn[3], set({3, 2}));
    EXPECT_EQ(result.cvarIn[4], set({3, 2}));
    EXPECT_EQ(result.cvarIn[5], set({3, 2}));
    EXPECT_EQ(result.cvarIn[6], set({3, 10}));
    EXPECT_EQ(result.cvarIn[7], set({3, 10}));
    EXPECT_EQ(result.cvarIn[8], set({3, 10}));   // the BNE's own uses
}

// ---- CVar analysis behaviours ------------------------------------------------

TEST(ControlProtectionTest, LoopInductionVariableIsProtected)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 10);                 // 0: feeds the branch -> protected
    b.li(REG_T1, 0);                  // 1: pure data -> tagged
    b.bind(loop);
    b.addi(REG_T1, REG_T1, 3);        // 2: data accumulator -> tagged
    b.addi(REG_T0, REG_T0, -1);       // 3: induction -> protected
    b.bgtz(REG_T0, loop);             // 4
    b.outw(REG_T1);                   // 5
    b.halt();                         // 6
    b.endFunction();
    auto prog = b.finish();
    auto result = computeControlProtection(prog, ProtectionConfig{});
    EXPECT_FALSE(result.tagged[0]);
    EXPECT_TRUE(result.tagged[1]);
    EXPECT_TRUE(result.tagged[2]);
    EXPECT_FALSE(result.tagged[3]);
}

TEST(ControlProtectionTest, InterproceduralFlowProtectsCallerValues)
{
    // main computes a value in $a0 that the callee branches on; with
    // interprocedural analysis the producing addi must stay protected.
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_A0, 5);                  // 0: flows into leaf's branch
    b.call("leaf");                   // 1
    b.halt();                         // 2
    b.endFunction();
    b.beginFunction("leaf");
    auto skip = b.newLabel();
    b.bgtz(REG_A0, skip);             // 3
    b.nop();                          // 4
    b.bind(skip);
    b.ret();                          // 5
    b.endFunction();
    auto prog = b.finish();

    ProtectionConfig inter;
    inter.interprocedural = true;
    auto interResult = computeControlProtection(prog, inter);
    EXPECT_FALSE(interResult.tagged[0]) << "value branches in callee";

    ProtectionConfig intra;
    intra.interprocedural = false;
    auto intraResult = computeControlProtection(prog, intra);
    EXPECT_TRUE(intraResult.tagged[0])
        << "intraprocedural analysis misses the callee branch";
}

TEST(ControlProtectionTest, ReturnAddressChainIsProtected)
{
    // A function that spills $ra must keep its $sp arithmetic
    // protected: the reload of $ra (which feeds jr, i.e. control)
    // names $sp in its definition. Two call sites make the epilogue's
    // $sp flow into the next activation's spill slot addressing.
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("mid");                    // 0
    b.call("mid");                    // 1
    b.halt();                         // 2
    b.endFunction();
    b.beginFunction("mid");
    b.addi(REG_SP, REG_SP, -8);       // 3: prologue -> protected
    b.sw(REG_RA, 0, REG_SP);          // 4
    b.li(REG_T0, 1);                  // 5: plain data -> tagged
    b.lw(REG_RA, 0, REG_SP);          // 6
    b.addi(REG_SP, REG_SP, 8);        // 7: epilogue -> protected
    b.ret();                          // 8
    b.endFunction();
    auto prog = b.finish();
    auto result = computeControlProtection(prog, ProtectionConfig{});
    EXPECT_FALSE(result.tagged[3]);
    EXPECT_TRUE(result.tagged[5]);
    EXPECT_FALSE(result.tagged[7]);
}

TEST(ControlProtectionTest, EligibilityRestrictsTagging)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T1, 1);                  // 0: data
    b.call("setup");                  // 1
    b.halt();                         // 2
    b.endFunction();
    b.beginFunction("setup");
    b.li(REG_T2, 2);                  // 3: data, but setup not eligible
    b.ret();                          // 4
    b.endFunction();
    auto prog = b.finish();

    ProtectionConfig config;
    config.eligibleFunctions = {"main"};
    auto result = computeControlProtection(prog, config);
    EXPECT_TRUE(result.tagged[0]);
    EXPECT_FALSE(result.tagged[3]) << "setup is not eligible";
}

TEST(ControlProtectionTest, ProtectAddressesAblation)
{
    // Address arithmetic feeding a load: tagged by default (the
    // paper's model), protected when protectAddresses is on.
    ProgramBuilder b;
    b.dataWords("tbl", {1, 2, 3, 4});
    b.beginFunction("main");
    b.li(REG_T0, 2);                  // 0: index (data)
    b.sll(REG_T1, REG_T0, 2);         // 1: address arithmetic
    b.la(REG_T2, "tbl");              // 2: base address
    b.add(REG_T1, REG_T1, REG_T2);    // 3: final address
    b.lw(REG_V0, 0, REG_T1);          // 4
    b.outw(REG_V0);                   // 5
    b.halt();                         // 6
    b.endFunction();
    auto prog = b.finish();

    auto paperResult =
        computeControlProtection(prog, ProtectionConfig{});
    EXPECT_TRUE(paperResult.tagged[1]);
    EXPECT_TRUE(paperResult.tagged[3]);

    ProtectionConfig withAddresses;
    withAddresses.protectAddresses = true;
    auto ablation = computeControlProtection(prog, withAddresses);
    EXPECT_FALSE(ablation.tagged[1]);
    EXPECT_FALSE(ablation.tagged[3]);
}

TEST(ControlProtectionTest, MemoryTrackingAblation)
{
    // A value is stored, reloaded, and branched on. The paper's
    // analysis (no memory disambiguation) tags the producing add --
    // its documented residual failure source. Conservative memory
    // tracking protects it.
    ProgramBuilder b;
    b.dataWords("slot", {0});
    b.beginFunction("main");
    auto out = b.newLabel();
    b.li(REG_T0, 1);                  // 0: produces the stored value
    b.la(REG_T9, "slot");             // 1
    b.sw(REG_T0, 0, REG_T9);          // 2
    b.lw(REG_T1, 0, REG_T9);          // 3
    b.bgtz(REG_T1, out);              // 4: control on the reload
    b.nop();                          // 5
    b.bind(out);
    b.halt();                         // 6
    b.endFunction();
    auto prog = b.finish();

    auto paperResult =
        computeControlProtection(prog, ProtectionConfig{});
    EXPECT_TRUE(paperResult.tagged[0])
        << "no memory disambiguation: the def-use chain breaks at the "
           "store";

    ProtectionConfig tracking;
    tracking.trackMemory = true;
    auto tracked = computeControlProtection(prog, tracking);
    EXPECT_FALSE(tracked.tagged[0])
        << "conservative memory tracking closes the residual hole";
}

TEST(ControlProtectionTest, FpCompareChainIsProtected)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto out = b.newLabel();
    b.lif(fpReg(1), 1.5f);            // 0,1 (li+mtc1)
    b.lif(fpReg(2), 2.5f);            // 2,3
    b.adds(fpReg(3), fpReg(1), fpReg(2)); // 4: feeds the compare
    b.adds(fpReg(4), fpReg(1), fpReg(1)); // 5: pure data
    b.clts(fpReg(3), fpReg(2));       // 6
    b.bc1t(out);                      // 7
    b.nop();                          // 8
    b.bind(out);
    b.halt();                         // 9
    b.endFunction();
    auto prog = b.finish();
    auto result = computeControlProtection(prog, ProtectionConfig{});
    EXPECT_FALSE(result.tagged[4]) << "feeds c.lt.s -> bc1t";
    EXPECT_TRUE(result.tagged[5]);
}

TEST(ControlProtectionTest, StatsAreConsistent)
{
    ProgramBuilder b;
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.li(REG_T0, 4);
    b.li(REG_T1, 0);
    b.bind(loop);
    b.addi(REG_T1, REG_T1, 2);
    b.addi(REG_T0, REG_T0, -1);
    b.bgtz(REG_T0, loop);
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    auto result = computeControlProtection(prog, ProtectionConfig{});
    unsigned tagged = 0;
    for (bool t : result.tagged)
        if (t)
            ++tagged;
    EXPECT_EQ(tagged, result.numTagged);
    EXPECT_LE(result.numTagged, result.numAlu);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_GT(result.taggedAluFraction(), 0.0);
    EXPECT_LE(result.taggedAluFraction(), 1.0);
}

// ---- property test: tagged values never reach control through registers ----

/**
 * Independent forward-taint oracle over def-use chains: starting from
 * a tagged instruction's definition, follow register flows (a use
 * that itself defines a register propagates the taint). Loads break
 * the chain, exactly as the CVar analysis assumes. The taint must
 * never reach a conditional branch, jr, or jalr operand.
 */
bool
taintReachesControl(const Program &prog, const FlowGraph &graph,
                    uint32_t taggedInstr)
{
    auto reaching = computeReaching(prog, graph);
    auto chains = computeDefUse(prog, reaching);
    std::set<uint32_t> visited;
    std::queue<uint32_t> frontier;
    frontier.push(taggedInstr);
    visited.insert(taggedInstr);
    while (!frontier.empty()) {
        uint32_t def = frontier.front();
        frontier.pop();
        for (const Use &use : chains.usesOf[def]) {
            const auto &ins = prog.code[use.instr];
            if (ins.isConditionalBranch() ||
                ins.op == Opcode::JR || ins.op == Opcode::JALR)
                return true;
            // Loads do not propagate register taint into their result
            // via the *base* (address) operand under the paper's
            // model, but all ALU/compare/move flows do.
            if (ins.isLoad())
                continue;
            if (ins.def() && !visited.count(use.instr)) {
                visited.insert(use.instr);
                frontier.push(use.instr);
            }
        }
    }
    return false;
}

/** Generate a random but well-formed program for the oracle check. */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b;
    b.dataWords("data", {1, 2, 3, 4, 5, 6, 7, 8});
    b.beginFunction("main");
    std::vector<Label> labels;
    for (int i = 0; i < 4; ++i)
        labels.push_back(b.newLabel());
    auto anyReg = [&] {
        return static_cast<RegId>(8 + rng.below(10)); // $t0..$t9
    };
    unsigned emitted = 0;
    for (int block = 0; block < 4; ++block) {
        for (int i = 0; i < 8; ++i) {
            switch (rng.below(6)) {
              case 0:
                b.add(anyReg(), anyReg(), anyReg());
                break;
              case 1:
                b.addi(anyReg(), anyReg(),
                       static_cast<int32_t>(rng.range(-100, 100)));
                break;
              case 2:
                b.mul(anyReg(), anyReg(), anyReg());
                break;
              case 3:
                b.slt(anyReg(), anyReg(), anyReg());
                break;
              case 4: {
                b.la(REG_K0, "data");
                b.lw(anyReg(), 4 * static_cast<int32_t>(rng.below(8)),
                     REG_K0);
                break;
              }
              case 5:
                b.sll(anyReg(), anyReg(),
                      static_cast<int32_t>(rng.below(8)));
                break;
            }
            ++emitted;
        }
        // End the block with a conditional branch to a random label.
        b.bne(anyReg(), anyReg(),
              labels[rng.below(labels.size())]);
        b.bind(labels[block]);
    }
    b.halt();
    b.endFunction();
    (void)emitted;
    return b.finish();
}

class TaintOracleTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TaintOracleTest, TaggedValuesNeverReachControl)
{
    auto prog = randomProgram(GetParam());
    FlowGraph graph(prog, true);
    auto result =
        computeControlProtection(prog, graph, ProtectionConfig{});
    for (uint32_t i = 0; i < prog.size(); ++i) {
        if (!result.tagged[i])
            continue;
        EXPECT_FALSE(taintReachesControl(prog, graph, i))
            << "instruction " << i << " (" << prog.code[i].toString()
            << ") is tagged but taints a control operand";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TaintOracleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

/** Fixpoint sanity: cvarOut is the union of successors' cvarIn. */
class FixpointTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FixpointTest, OutIsJoinOfSuccessorIns)
{
    auto prog = randomProgram(GetParam() + 1000);
    FlowGraph graph(prog, true);
    auto result =
        computeControlProtection(prog, graph, ProtectionConfig{});
    for (uint32_t i = 0; i < prog.size(); ++i) {
        LocSet join;
        for (uint32_t s : graph.successors(i))
            join |= result.cvarIn[s];
        EXPECT_EQ(result.cvarOut[i], join) << "instruction " << i;
        // And IN always contains everything OUT minus the def.
        LocSet expected = result.cvarOut[i];
        if (auto def = prog.code[i].def())
            expected.reset(*def);
        EXPECT_EQ((result.cvarIn[i] & expected), expected)
            << "IN must cover OUT \\ def at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FixpointTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

/**
 * Lattice monotonicity: enabling an extra protection source (address
 * operands, memory tracking) can only move locations *into* CVar, so
 * the tagged set must shrink (subset) on every program. Conversely,
 * disabling interprocedural edges loses callee constraints, so the
 * intraprocedural tagged set must be a superset.
 */
class MonotonicityTest : public ::testing::TestWithParam<uint64_t>
{
  protected:
    static bool
    subsetOf(const std::vector<bool> &a, const std::vector<bool> &b)
    {
        for (size_t i = 0; i < a.size(); ++i)
            if (a[i] && !b[i])
                return false;
        return true;
    }
};

TEST_P(MonotonicityTest, StricterConfigsTagSubsets)
{
    auto prog = randomProgram(GetParam() + 5000);
    ProtectionConfig base;
    auto baseline = computeControlProtection(prog, base);

    ProtectionConfig addresses = base;
    addresses.protectAddresses = true;
    EXPECT_TRUE(subsetOf(
        computeControlProtection(prog, addresses).tagged,
        baseline.tagged));

    ProtectionConfig memory = base;
    memory.trackMemory = true;
    EXPECT_TRUE(subsetOf(computeControlProtection(prog, memory).tagged,
                         baseline.tagged));

    ProtectionConfig both = addresses;
    both.trackMemory = true;
    EXPECT_TRUE(subsetOf(computeControlProtection(prog, both).tagged,
                         computeControlProtection(prog, addresses)
                             .tagged));
}

TEST_P(MonotonicityTest, WorkloadsTagSubsetsToo)
{
    // Same property on a real workload program (interprocedural).
    static const char *names[] = {"susan", "adpcm", "mcf", "gsm"};
    const char *name = names[GetParam() % 4];
    auto workload = workloads::createWorkload(
        name, workloads::Scale::Test);
    ProtectionConfig base;
    base.eligibleFunctions = workload->eligibleFunctions();
    auto baseline =
        computeControlProtection(workload->program(), base);
    ProtectionConfig addresses = base;
    addresses.protectAddresses = true;
    EXPECT_TRUE(subsetOf(
        computeControlProtection(workload->program(), addresses).tagged,
        baseline.tagged))
        << name;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, MonotonicityTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

TEST(ControlProtectionTest, MismatchedGraphPanics)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.halt();
    b.endFunction();
    auto prog = b.finish();
    FlowGraph intra(prog, false);
    ProtectionConfig config; // interprocedural = true
    EXPECT_THROW(computeControlProtection(prog, intra, config),
                 PanicError);
}

} // namespace
