/**
 * @file
 * The assembly lint gate, exercised against hand-built malformed
 * programs: dead code, read-before-write registers, unbalanced stack
 * frames, and wild control transfers must each surface as a finding
 * of the right check, while every clean program (including the whole
 * workload registry, covered by the CI `etc_lab lint` step) stays
 * finding-free.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/control_protection.hh"
#include "analysis/lint.hh"
#include "asm/builder.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using analysis::LintReport;

bool
hasFinding(const LintReport &report, const std::string &check)
{
    return std::any_of(report.findings.begin(), report.findings.end(),
                       [&](const analysis::LintFinding &finding) {
                           return finding.check == check;
                       });
}

/** A minimal well-formed program: init, compute, emit, halt. */
Program
cleanProgram()
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.li(REG_T0, 5);
    b.addi(REG_T1, REG_T0, 3);
    b.outw(REG_T1);
    b.halt();
    b.endFunction();
    return b.finish();
}

TEST(LintTest, CleanProgramHasNoFindings)
{
    auto report = analysis::lintProgram(cleanProgram());
    EXPECT_TRUE(report.clean()) << report.toString();
}

TEST(LintTest, DeadBlockIsReported)
{
    // The jump skips over two instructions no path ever reaches.
    ProgramBuilder b;
    b.beginFunction("main");
    auto skip = b.newLabel();
    b.li(REG_T0, 1);
    b.j(skip);
    b.li(REG_T1, 2); // dead
    b.li(REG_T2, 3); // dead
    b.bind(skip);
    b.outw(REG_T0);
    b.halt();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(hasFinding(report, "unreachable"))
        << report.toString();
}

TEST(LintTest, ReadBeforeWriteIsReported)
{
    // $t3 is consumed before any instruction defines it.
    ProgramBuilder b;
    b.beginFunction("main");
    b.addi(REG_T0, REG_T3, 1);
    b.outw(REG_T0);
    b.halt();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_TRUE(hasFinding(report, "uninit-read"))
        << report.toString();
}

TEST(LintTest, SimulatorInitializedRegistersAreExempt)
{
    // $sp and $ra are machine-initialized; reading them at entry is
    // the normal prologue/return idiom, not an uninitialized read.
    ProgramBuilder b;
    b.beginFunction("main");
    b.addi(REG_SP, REG_SP, -8);
    b.sw(REG_RA, 0, REG_SP);
    b.lw(REG_RA, 0, REG_SP);
    b.addi(REG_SP, REG_SP, 8);
    b.halt();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_FALSE(hasFinding(report, "uninit-read"))
        << report.toString();
}

TEST(LintTest, UnbalancedStackFrameIsReported)
{
    // The callee grows its frame but returns without shrinking it.
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("leaky");
    b.halt();
    b.endFunction();
    b.beginFunction("leaky");
    b.addi(REG_SP, REG_SP, -16);
    b.ret();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_TRUE(hasFinding(report, "stack")) << report.toString();
}

TEST(LintTest, BalancedStackFrameIsClean)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.call("tidy");
    b.halt();
    b.endFunction();
    b.beginFunction("tidy");
    b.addi(REG_SP, REG_SP, -16);
    b.addi(REG_SP, REG_SP, 16);
    b.ret();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_FALSE(hasFinding(report, "stack")) << report.toString();
}

TEST(LintTest, DisagreeingJoinOffsetsAreReported)
{
    // The two paths into the join leave $sp at different offsets.
    ProgramBuilder b;
    b.beginFunction("main");
    auto join = b.newLabel();
    auto other = b.newLabel();
    b.li(REG_T0, 1);
    b.beq(REG_T0, REG_ZERO, other);
    b.addi(REG_SP, REG_SP, -8);
    b.j(join);
    b.bind(other);
    b.addi(REG_SP, REG_SP, -16);
    b.bind(join);
    b.halt();
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    EXPECT_TRUE(hasFinding(report, "stack")) << report.toString();
}

TEST(LintTest, EveryRegistryWorkloadLintsClean)
{
    // The very gate CI runs: the shipped workloads must stay clean
    // under both the structural and the injectable-layer checks.
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        auto report = analysis::lintProgram(workload->program());

        analysis::ProtectionConfig config;
        config.eligibleFunctions = workload->eligibleFunctions();
        auto protection = analysis::computeControlProtection(
            workload->program(), config);
        analysis::lintInjectable(workload->program(),
                                 protection.tagged, report);
        EXPECT_TRUE(report.clean())
            << name << ":\n" << report.toString();
    }
}

TEST(LintTest, FindingsRenderOnePerLine)
{
    ProgramBuilder b;
    b.beginFunction("main");
    b.addi(REG_T0, REG_T3, 1); // uninit read
    b.addi(REG_SP, REG_SP, -8);
    b.halt(); // frame still open at program exit is fine (no return),
    b.endFunction();

    auto report = analysis::lintProgram(b.finish());
    ASSERT_FALSE(report.clean());
    std::string text = report.toString();
    size_t lines = std::count(text.begin(), text.end(), '\n');
    EXPECT_EQ(lines, report.findings.size());
    EXPECT_NE(text.find("uninit-read"), std::string::npos);
}

} // namespace
