/**
 * @file
 * Integration tests for the full pipeline (ErrorToleranceStudy):
 * analysis -> profile -> campaigns -> fidelity, plus the paper's
 * headline qualitative results on small-scale workloads.
 */

#include <gtest/gtest.h>

#include "core/study.hh"

namespace {

using namespace etc;
using namespace etc::core;
using workloads::Scale;
using workloads::createWorkload;

StudyConfig
quickConfig(unsigned trials = 10)
{
    StudyConfig config;
    config.trials = trials;
    config.seed = 0xfeed;
    return config;
}

TEST(StudyTest, ProfilesAtConstruction)
{
    auto workload = createWorkload("susan", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig());
    EXPECT_GT(study.profile().total, 0u);
    EXPECT_GT(study.profile().tagged, 0u);
    EXPECT_LE(study.profile().tagged, study.profile().total);
    EXPECT_GT(study.protection().numTagged, 0u);
    EXPECT_GT(study.goldenInstructions(), 0u);
    EXPECT_FALSE(study.goldenOutput().empty());
}

TEST(StudyTest, ZeroErrorCellIsPerfect)
{
    auto workload = createWorkload("adpcm", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig());
    auto cell = study.runCell(0, ProtectionMode::Protected);
    EXPECT_EQ(cell.completed, cell.trials);
    EXPECT_EQ(cell.failureRate(), 0.0);
    EXPECT_EQ(cell.acceptableRate(), 1.0);
    for (const auto &score : cell.fidelities)
        EXPECT_TRUE(score.acceptable);
}

TEST(StudyTest, Reproducible)
{
    auto workload = createWorkload("gsm", Scale::Test);
    ErrorToleranceStudy a(*workload, quickConfig());
    ErrorToleranceStudy b(*workload, quickConfig());
    auto cellA = a.runCell(5, ProtectionMode::Protected);
    auto cellB = b.runCell(5, ProtectionMode::Protected);
    EXPECT_EQ(cellA.completed, cellB.completed);
    EXPECT_EQ(cellA.crashed, cellB.crashed);
    EXPECT_EQ(cellA.timedOut, cellB.timedOut);
    ASSERT_EQ(cellA.fidelities.size(), cellB.fidelities.size());
    for (size_t i = 0; i < cellA.fidelities.size(); ++i)
        EXPECT_DOUBLE_EQ(cellA.fidelities[i].value,
                         cellB.fidelities[i].value);
}

TEST(StudyTest, CellBookkeeping)
{
    auto workload = createWorkload("mcf", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig(12));
    auto cell = study.runCell(3, ProtectionMode::Unprotected, 8);
    EXPECT_EQ(cell.trials, 8u);
    EXPECT_EQ(cell.errors, 3u);
    EXPECT_EQ(cell.policy, "unprotected");
    EXPECT_EQ(cell.completed + cell.crashed + cell.timedOut,
              cell.trials);
    EXPECT_EQ(cell.fidelities.size(), cell.completed);
}

/**
 * The paper's headline (Table 2): without control protection,
 * error tolerance collapses; with it, the application degrades
 * gracefully. Checked here as "protected failure rate is strictly
 * lower than unprotected" on a control-heavy workload at a moderate
 * error count -- deterministic, since campaigns are seeded.
 */
TEST(StudyTest, ProtectionPreventsCatastrophicFailure)
{
    auto workload = createWorkload("mcf", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig(20));
    auto prot = study.runCell(8, ProtectionMode::Protected);
    auto unprot = study.runCell(8, ProtectionMode::Unprotected);
    EXPECT_LT(prot.failureRate(), unprot.failureRate());
    EXPECT_GT(unprot.failureRate(), 0.3);
}

TEST(StudyTest, ProtectedSusanNeverCrashes)
{
    // Susan with protection tolerates even heavy error counts
    // (paper: 0% failures at 2200 errors) -- its kernel has no
    // taggable address arithmetic or data-dependent loop bounds.
    auto workload = createWorkload("susan", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig(10));
    auto cell = study.runCell(100, ProtectionMode::Protected);
    EXPECT_EQ(cell.failureRate(), 0.0);
}

TEST(StudyTest, FidelityDegradesWithErrorCount)
{
    auto workload = createWorkload("susan", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig(10));
    auto low = study.runCell(5, ProtectionMode::Protected);
    auto high = study.runCell(200, ProtectionMode::Protected);
    EXPECT_GT(low.meanFidelity(), high.meanFidelity());
}

TEST(StudyTest, ArtDegradesWithoutCrashing)
{
    // Paper Figure 6: ART's recognition flips with a handful of
    // errors yet never fails catastrophically.
    auto workload = createWorkload("art", Scale::Test);
    ErrorToleranceStudy study(*workload, quickConfig(15));
    auto cell = study.runCell(4, ProtectionMode::Protected);
    EXPECT_EQ(cell.failureRate(), 0.0);
    EXPECT_LT(cell.acceptableRate(), 1.0);
}

TEST(StudyTest, MemoryModelAblationChangesFailures)
{
    // Strict (bounds-checking) memory turns wild accesses into
    // crashes; adpcm's step-table lookup is the canonical victim.
    auto workload = createWorkload("adpcm", Scale::Test);
    StudyConfig lenient = quickConfig(25);
    StudyConfig strict = quickConfig(25);
    strict.memoryModel = sim::MemoryModel::Strict;
    ErrorToleranceStudy lenientStudy(*workload, lenient);
    ErrorToleranceStudy strictStudy(*workload, strict);
    auto lenientCell =
        lenientStudy.runCell(30, ProtectionMode::Protected);
    auto strictCell =
        strictStudy.runCell(30, ProtectionMode::Protected);
    EXPECT_LE(lenientCell.failureRate(), strictCell.failureRate());
}

TEST(StudyTest, AddressProtectionAblationReducesResiduals)
{
    // Turning on address protection shrinks the injectable set and
    // cannot increase the protected failure rate (statistically it
    // all but eliminates wild accesses).
    auto workload = createWorkload("adpcm", Scale::Test);
    StudyConfig paper = quickConfig(25);
    StudyConfig hardened = quickConfig(25);
    hardened.protection.protectAddresses = true;

    ErrorToleranceStudy paperStudy(*workload, paper);
    ErrorToleranceStudy hardenedStudy(*workload, hardened);
    EXPECT_LT(hardenedStudy.profile().taggedFraction(),
              paperStudy.profile().taggedFraction());
}

TEST(CellSummaryTest, Statistics)
{
    CellSummary cell;
    cell.trials = 4;
    cell.completed = 2;
    cell.crashed = 1;
    cell.timedOut = 1;
    cell.fidelities.push_back({10.0, true, "dB"});
    cell.fidelities.push_back({20.0, false, "dB"});
    EXPECT_DOUBLE_EQ(cell.failureRate(), 0.5);
    EXPECT_DOUBLE_EQ(cell.meanFidelity(), 15.0);
    EXPECT_DOUBLE_EQ(cell.acceptableRate(), 0.25);
}

TEST(CellSummaryTest, EmptyIsSafe)
{
    CellSummary cell;
    EXPECT_DOUBLE_EQ(cell.failureRate(), 0.0);
    EXPECT_DOUBLE_EQ(cell.meanFidelity(), 0.0);
    EXPECT_DOUBLE_EQ(cell.acceptableRate(), 0.0);
}

} // namespace
