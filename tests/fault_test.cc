/**
 * @file
 * Tests for the fault-injection layer: injectable sets, plan sampling,
 * the injector hook, and campaign mechanics (determinism, outcome
 * classification).
 */

#include <gtest/gtest.h>

#include "analysis/control_protection.hh"
#include "asm/builder.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::fault;

/** A small data loop: sums a table, streams the total. */
Program
sumProgram()
{
    ProgramBuilder b;
    b.dataWords("tbl", {1, 2, 3, 4, 5, 6, 7, 8});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.la(REG_T0, "tbl");              // 0
    b.addi(REG_T1, REG_T0, 32);       // 1: end pointer
    b.li(REG_T2, 0);                  // 2: sum (data)
    b.bind(loop);
    b.lw(REG_T3, 0, REG_T0);          // 3
    b.add(REG_T2, REG_T2, REG_T3);    // 4: data accumulate
    b.addi(REG_T0, REG_T0, 4);        // 5: induction
    b.blt(REG_T0, REG_T1, loop);      // 6,7 (slt + bne)
    b.outw(REG_T2);                   // 8
    b.halt();                         // 9
    b.endFunction();
    return b.finish();
}

// ---- injectable sets -----------------------------------------------------

TEST(InjectableTest, ProtectedSetEqualsTags)
{
    auto prog = sumProgram();
    auto protection =
        analysis::computeControlProtection(prog,
                                           analysis::ProtectionConfig{});
    auto injectable = injectableWithProtection(prog, protection.tagged);
    ASSERT_EQ(injectable.size(), prog.size());
    for (uint32_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(injectable[i], static_cast<bool>(protection.tagged[i]))
            << "instruction " << i;
        if (injectable[i]) {
            EXPECT_TRUE(prog.code[i].def().has_value());
        }
    }
}

TEST(InjectableTest, UnprotectedSetCoversAllResults)
{
    auto prog = sumProgram();
    auto injectable = injectableWithoutProtection(prog);
    for (uint32_t i = 0; i < prog.size(); ++i) {
        const auto &ins = prog.code[i];
        bool expected = ins.def().has_value() || ins.isStore() ||
                        ins.isControl();
        EXPECT_EQ(injectable[i], expected) << ins.toString();
    }
    // The halt is not injectable; the branch is.
    EXPECT_FALSE(injectable[9]);
    EXPECT_TRUE(injectable[7]);
}

TEST(InjectableTest, SizeMismatchPanics)
{
    auto prog = sumProgram();
    std::vector<bool> wrong(3, true);
    EXPECT_THROW(injectableWithProtection(prog, wrong), PanicError);
}

// ---- plan sampling -----------------------------------------------------------

TEST(PlanTest, SamplesWithinStream)
{
    Rng rng(5);
    auto plan = samplePlan(1000, 10, rng);
    EXPECT_EQ(plan.size(), 10u);
    EXPECT_TRUE(std::is_sorted(plan.sites.begin(), plan.sites.end()));
    for (uint64_t site : plan.sites)
        EXPECT_LT(site, 1000u);
    for (uint32_t mask : plan.masks) {
        EXPECT_NE(mask, 0u);
        // Single-flip model: every mask is one-hot.
        EXPECT_EQ(mask & (mask - 1), 0u);
    }
}

TEST(PlanTest, MoreErrorsThanStreamClamps)
{
    Rng rng(5);
    auto plan = samplePlan(4, 100, rng);
    EXPECT_EQ(plan.size(), 4u);
}

TEST(PlanTest, DeterministicBySeed)
{
    Rng a(77), b(77);
    auto planA = samplePlan(5000, 25, a);
    auto planB = samplePlan(5000, 25, b);
    EXPECT_EQ(planA.sites, planB.sites);
    EXPECT_EQ(planA.masks, planB.masks);
}

// ---- injector ------------------------------------------------------------------

TEST(InjectorTest, FlipsExactlyPlannedSites)
{
    auto prog = sumProgram();
    // Only instruction 4 (the accumulate) is injectable.
    std::vector<bool> injectable(prog.size(), false);
    injectable[4] = true;

    // Flip bit 0 of the 2nd dynamic execution of instruction 4.
    InjectionPlan plan;
    plan.sites = {1};
    plan.masks = {1u << 0};
    Injector injector(injectable, plan);

    sim::Simulator sim(prog);
    auto result = sim.run(0, &injector);
    ASSERT_TRUE(result.completed());
    EXPECT_EQ(injector.injectedCount(), 1u);
    EXPECT_EQ(injector.injectableRetired(), 8u); // 8 loop iterations

    // Golden sum = 36. After the 2nd accumulate the sum was 3 -> 2
    // (bit 0 flip), so the final total is 35.
    auto words = sim.output();
    ASSERT_EQ(words.size(), 4u);
    uint32_t total = words[0] | (words[1] << 8) | (words[2] << 16) |
                     (words[3] << 24);
    EXPECT_EQ(total, 35u);
}

TEST(InjectorTest, NoSitesMeansGoldenRun)
{
    auto prog = sumProgram();
    auto injectable = injectableWithoutProtection(prog);
    Injector injector(injectable, InjectionPlan{});
    sim::Simulator sim(prog);
    ASSERT_TRUE(sim.run(0, &injector).completed());
    EXPECT_EQ(injector.injectedCount(), 0u);

    sim::Simulator golden(prog);
    ASSERT_TRUE(golden.run().completed());
    EXPECT_EQ(sim.output(), golden.output());
}

TEST(InjectorTest, PcFlipOnBranchDisturbsControl)
{
    auto prog = sumProgram();
    std::vector<bool> injectable(prog.size(), false);
    injectable[7] = true; // the bne

    InjectionPlan plan;
    plan.sites = {0};
    plan.masks = {1u << 20}; // high bit -> wild PC
    Injector injector(injectable, plan);
    sim::Simulator sim(prog);
    auto result = sim.run(10000, &injector);
    EXPECT_EQ(injector.injectedCount(), 1u);
    EXPECT_EQ(result.status, sim::RunStatus::BadJump);
}

TEST(InjectorTest, StoreFlipCorruptsMemory)
{
    ProgramBuilder b;
    b.dataWords("slot", {0});
    b.beginFunction("main");
    b.li(REG_T0, 0x10);               // 0
    b.la(REG_T9, "slot");             // 1
    b.sw(REG_T0, 0, REG_T9);          // 2: injectable store
    b.lw(REG_T1, 0, REG_T9);          // 3
    b.outw(REG_T1);                   // 4
    b.halt();                         // 5
    b.endFunction();
    auto prog = b.finish();

    std::vector<bool> injectable(prog.size(), false);
    injectable[2] = true;
    InjectionPlan plan;
    plan.sites = {0};
    plan.masks = {1u << 0};
    Injector injector(injectable, plan);
    sim::Simulator sim(prog);
    ASSERT_TRUE(sim.run(0, &injector).completed());
    EXPECT_EQ(injector.injectedCount(), 1u);
    EXPECT_EQ(sim.output()[0], 0x11); // 0x10 with bit 0 flipped
}

// ---- campaign -------------------------------------------------------------------

TEST(CampaignTest, GoldenRunRecorded)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    EXPECT_GT(runner.goldenInstructions(), 0u);
    EXPECT_GT(runner.injectableDynamicCount(), 0u);
    EXPECT_EQ(runner.goldenOutput().size(), 4u);
}

TEST(CampaignTest, ZeroErrorsAllComplete)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    CampaignConfig config;
    config.trials = 10;
    config.errors = 0;
    auto result = runner.run(config);
    EXPECT_EQ(result.completed, 10u);
    EXPECT_EQ(result.failureRate(), 0.0);
    for (const auto &outcome : result.outcomes)
        EXPECT_EQ(outcome.output, runner.goldenOutput());
}

TEST(CampaignTest, DeterministicBySeed)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    CampaignConfig config;
    config.trials = 16;
    config.errors = 3;
    config.seed = 99;
    auto a = runner.run(config);
    auto b = runner.run(config);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].run.status, b.outcomes[i].run.status);
        EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output);
        EXPECT_EQ(a.outcomes[i].injected, b.outcomes[i].injected);
    }
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
}

TEST(CampaignTest, DifferentSeedsDiffer)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    CampaignConfig config;
    config.trials = 20;
    config.errors = 2;
    config.seed = 1;
    auto a = runner.run(config);
    config.seed = 2;
    auto b = runner.run(config);
    bool anyDifferent = false;
    for (size_t i = 0; i < a.outcomes.size(); ++i)
        if (a.outcomes[i].output != b.outcomes[i].output ||
            a.outcomes[i].run.status != b.outcomes[i].run.status)
            anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

TEST(CampaignTest, ClassificationBuckets)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    CampaignConfig config;
    config.trials = 40;
    config.errors = 4;
    auto result = runner.run(config);
    EXPECT_EQ(result.completed + result.crashed + result.timedOut,
              result.trials);
    EXPECT_EQ(result.outcomes.size(), result.trials);
    // Only completed trials carry output.
    for (const auto &outcome : result.outcomes) {
        if (!outcome.run.completed()) {
            EXPECT_TRUE(outcome.output.empty());
        }
    }
}

TEST(CampaignTest, PerTrialObserverRuns)
{
    auto prog = sumProgram();
    CampaignRunner runner(prog, injectableWithoutProtection(prog));
    CampaignConfig config;
    config.trials = 5;
    config.errors = 1;
    unsigned calls = 0;
    runner.run(config, [&](const TrialOutcome &) { ++calls; });
    EXPECT_EQ(calls, 5u);
}

TEST(CampaignTest, BitmapSizeMismatchPanics)
{
    auto prog = sumProgram();
    EXPECT_THROW(CampaignRunner(prog, std::vector<bool>(2, true)),
                 PanicError);
}

} // namespace
