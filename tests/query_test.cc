/**
 * @file
 * Archive query-engine tests over a synthetic store: filter
 * semantics, every aggregation's envelope (field presence + exact
 * counts from hand-computable summaries), determinism of the JSON
 * bytes across processes (two runQuery calls), and rejection of
 * invalid requests via QueryError.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/query.hh"
#include "store/cell_key.hh"
#include "store/result_store.hh"

namespace {

using namespace etc;
using namespace etc::core;

namespace fs = std::filesystem;

store::CellKey
cellKey(const std::string &policy, unsigned errors)
{
    store::CellKey key;
    key.workload = "gsm";
    key.policy = policy;
    key.errors = errors;
    key.trials = 10;
    key.seed = 0xbe7cull;
    key.budgetFactor = 10.0;
    key.memoryModel = "lenient";
    key.programHash = "0xdeadbeefcafef00d";
    return key;
}

/** @p completed trials finish with evenly spaced fidelities in
 *  (0, 1]; the rest crash. */
core::CellSummary
cellSummary(const std::string &policy, unsigned errors,
            unsigned completed)
{
    core::CellSummary summary;
    summary.errors = errors;
    summary.policy = policy;
    summary.trials = 10;
    summary.completed = completed;
    summary.crashed = 10 - completed;
    summary.timedOut = 0;
    summary.totalInstructions = 1000;
    summary.wallSeconds = 0.5;
    for (unsigned i = 0; i < completed; ++i) {
        workloads::FidelityScore score;
        score.value = (double)(i + 1) / completed;
        score.acceptable = score.value >= 0.5;
        score.unit = "dB";
        summary.fidelities.push_back(score);
    }
    return summary;
}

class QueryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("etc_query_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        fs::remove_all(root_);
        store::ResultStore cache(root_.string());
        // 2 policies x 2 error counts; protected completes more.
        cache.storeCell(cellKey("protected", 1),
                        cellSummary("protected", 1, 10));
        cache.storeCell(cellKey("protected", 5),
                        cellSummary("protected", 5, 8));
        cache.storeCell(cellKey("unprotected", 1),
                        cellSummary("unprotected", 1, 8));
        cache.storeCell(cellKey("unprotected", 5),
                        cellSummary("unprotected", 5, 4));
    }

    void TearDown() override { fs::remove_all(root_); }

    QueryReport
    run(QueryAgg agg, QueryFilter filter = {})
    {
        QueryOptions options;
        options.filter = std::move(filter);
        options.agg = agg;
        return runQuery(root_.string(), options);
    }

    std::filesystem::path root_;
};

TEST_F(QueryTest, CellsListsMatchesWithoutLoadingRecords)
{
    auto report = run(QueryAgg::Cells);
    EXPECT_EQ(report.cellsIndexed, 4u);
    EXPECT_EQ(report.cellsMatched, 4u);
    EXPECT_EQ(report.recordsLoaded, 0u);
    EXPECT_EQ(report.table.rowCount(), 4u);
    EXPECT_NE(report.json.find("\"agg\":\"cells\""), std::string::npos);
    EXPECT_NE(report.json.find("\"trialsCovered\":40"),
              std::string::npos);
}

TEST_F(QueryTest, FiltersNarrowByEveryAxis)
{
    QueryFilter filter;
    filter.policies = {"protected"};
    filter.errors = {5};
    auto report = run(QueryAgg::Cells, filter);
    EXPECT_EQ(report.cellsMatched, 1u);

    filter.seed = 0x1234; // wrong seed: nothing matches
    EXPECT_EQ(run(QueryAgg::Cells, filter).cellsMatched, 0u);
    filter.seed = 0xbe7c;
    filter.trials = 10;
    EXPECT_EQ(run(QueryAgg::Cells, filter).cellsMatched, 1u);
}

TEST_F(QueryTest, CurveTalliesOutcomesPerGroup)
{
    auto report = run(QueryAgg::Curve);
    EXPECT_EQ(report.recordsLoaded, 4u);
    EXPECT_EQ(report.table.rowCount(), 4u);
    // unprotected/5: 4 completed of 10 -> failureRate 0.6.
    EXPECT_NE(report.json.find("\"policy\":\"unprotected\",\"errors\":5,"
                               "\"cells\":1,\"trials\":10,"
                               "\"completed\":4,\"crashed\":6"),
              std::string::npos)
        << report.json;
    EXPECT_NE(report.json.find("\"failureRate\":\"0.59999999999999998\""),
              std::string::npos)
        << report.json;
}

TEST_F(QueryTest, DeltaComparesAgainstBasePolicy)
{
    auto report = run(QueryAgg::Delta);
    // Two error counts, one non-base policy -> two rows.
    EXPECT_EQ(report.table.rowCount(), 2u);
    EXPECT_NE(report.json.find("\"base\":\"protected\""),
              std::string::npos);
    // errors=5: unprotected fails 0.6, protected 0.2 -> delta 0.4.
    EXPECT_NE(report.json.find("\"deltaFailureRate\":"
                               "\"0.39999999999999997\""),
              std::string::npos)
        << report.json;
}

TEST_F(QueryTest, CdfReportsQuantilesPerPolicy)
{
    auto report = run(QueryAgg::Cdf);
    EXPECT_EQ(report.table.rowCount(), 2u);
    // protected pools 10 + 8 fidelities; min is 1/10.
    EXPECT_NE(report.json.find("\"policy\":\"protected\",\"count\":18"),
              std::string::npos)
        << report.json;
    EXPECT_NE(report.json.find("\"min\":\"0.10000000000000001\""),
              std::string::npos)
        << report.json;
    EXPECT_NE(report.json.find("\"max\":\"1\""), std::string::npos);
}

TEST_F(QueryTest, CoverageGroupsFromIndexAlone)
{
    auto report = run(QueryAgg::Coverage);
    EXPECT_EQ(report.recordsLoaded, 0u);
    EXPECT_EQ(report.table.rowCount(), 2u);
    EXPECT_NE(report.json.find("\"cells\":2"), std::string::npos);
}

TEST_F(QueryTest, JsonBytesAreDeterministic)
{
    for (auto agg : {QueryAgg::Cells, QueryAgg::Coverage,
                     QueryAgg::Curve, QueryAgg::Delta, QueryAgg::Cdf})
        EXPECT_EQ(run(agg).json, run(agg).json)
            << queryAggName(agg);
}

TEST_F(QueryTest, InvalidRequestsThrowQueryError)
{
    EXPECT_THROW(parseQueryAgg("bogus"), QueryError);
    QueryOptions options;
    options.agg = QueryAgg::Avf; // avf needs a known workload
    EXPECT_THROW(runQuery(root_.string(), options), QueryError);
    options.filter.workload = "no-such-workload";
    EXPECT_THROW(runQuery(root_.string(), options), QueryError);
}

TEST_F(QueryTest, EmptyArchiveYieldsEmptyRollups)
{
    fs::path empty = root_;
    empty += "_empty";
    fs::remove_all(empty);
    QueryOptions options;
    options.agg = QueryAgg::Curve;
    auto report = runQuery(empty.string(), options);
    EXPECT_EQ(report.cellsIndexed, 0u);
    EXPECT_EQ(report.cellsMatched, 0u);
    EXPECT_NE(report.json.find("\"rows\":[]"), std::string::npos);
    fs::remove_all(empty);
}

} // namespace
