/**
 * @file
 * The checkpointing + trial fast-forwarding subsystem:
 *
 *  - Memory's dirty-page tracking and page snapshot interface;
 *  - CheckpointStore capture/restore round-trips (a run resumed from
 *    any checkpoint finishes bit-identically to the golden run);
 *  - dirty-delta correctness (each checkpoint sees the *latest* page
 *    contents at its capture point, not stale or future ones);
 *  - the campaign-equivalence contract: CampaignResults are
 *    bit-identical with checkpointing on vs. off, at 1/4/all threads,
 *    on two real workloads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "asm/builder.hh"
#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::isa;
using namespace etc::assembly;
using namespace etc::fault;
using namespace etc::sim;

/**
 * A loop with memory traffic: repeatedly rewrites a counter cell and a
 * running sum, streaming partial sums, so consecutive checkpoint
 * intervals keep dirtying the same pages with different values.
 */
Program
accumulateProgram(uint32_t rounds)
{
    ProgramBuilder b;
    b.dataWords("count", {0});
    b.dataWords("sum", {0});
    b.beginFunction("main");
    auto loop = b.newLabel();
    b.la(REG_T0, "count");
    b.la(REG_T1, "sum");
    b.li(REG_T2, static_cast<int32_t>(rounds));
    b.bind(loop);
    b.lw(REG_T3, 0, REG_T0);
    b.addi(REG_T3, REG_T3, 1);
    b.sw(REG_T3, 0, REG_T0);
    b.lw(REG_T4, 0, REG_T1);
    b.add(REG_T4, REG_T4, REG_T3);
    b.sw(REG_T4, 0, REG_T1);
    b.outw(REG_T4);
    b.blt(REG_T3, REG_T2, loop);
    b.halt();
    b.endFunction();
    return b.finish();
}

// ---- Memory dirty tracking -------------------------------------------------

TEST(CheckpointTest, DirtyTrackingRecordsWritesNotReads)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    mem.resetDirtyTracking();
    uint32_t value = 0;
    ASSERT_EQ(mem.read32(DATA_BASE, value), MemStatus::Ok);
    EXPECT_TRUE(mem.drainDirtyPages().empty())
        << "reads must not dirty pages";

    ASSERT_EQ(mem.write32(DATA_BASE, 42), MemStatus::Ok);
    ASSERT_EQ(mem.write8(STACK_TOP - 8, 7), MemStatus::Ok);
    auto dirty = mem.drainDirtyPages();
    ASSERT_EQ(dirty.size(), 2u);
    EXPECT_EQ(dirty[0], DATA_BASE >> Memory::PAGE_BITS);
    EXPECT_EQ(dirty[1], (STACK_TOP - 8) >> Memory::PAGE_BITS);
    EXPECT_TRUE(mem.drainDirtyPages().empty()) << "drain must clear";
}

TEST(CheckpointTest, ClearReusesPagesAndZeroes)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    ASSERT_EQ(mem.write32(DATA_BASE + 8, 0xdeadbeef), MemStatus::Ok);
    const uint8_t *before = mem.pageData(DATA_BASE >> Memory::PAGE_BITS);
    ASSERT_NE(before, nullptr);
    mem.clear();
    const uint8_t *after = mem.pageData(DATA_BASE >> Memory::PAGE_BITS);
    EXPECT_EQ(before, after) << "clear() must reuse the allocation";
    EXPECT_EQ(mem.hostRead32(DATA_BASE + 8), 0u);
    EXPECT_TRUE(mem.drainDirtyPages().empty());
}

TEST(CheckpointTest, SetPageRoundTrip)
{
    Memory mem(DATA_BASE, DATA_BASE + 64);
    std::vector<uint8_t> page(Memory::PAGE_SIZE);
    for (size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<uint8_t>(i * 7);
    mem.setPage(DATA_BASE >> Memory::PAGE_BITS, page.data());
    EXPECT_EQ(mem.hostReadBlock(DATA_BASE, Memory::PAGE_SIZE), page);
    EXPECT_EQ(mem.pageData(0), nullptr) << "page outside both segments";
}

// ---- snapshot / restore round-trip ----------------------------------------

TEST(CheckpointTest, ResumedRunsFinishBitIdenticallyFromEveryCheckpoint)
{
    auto prog = accumulateProgram(200);
    auto injectable = injectableWithoutProtection(prog);

    Simulator golden(prog);
    CheckpointStore store;
    golden.memory().resetDirtyTracking();
    CheckpointRecorder recorder(injectable, 64, golden, store);
    auto goldenRun = golden.run(0, &recorder);
    ASSERT_TRUE(goldenRun.completed());
    ASSERT_GT(store.size(), 3u) << "interval too coarse for this test";

    Simulator resumed(prog);
    auto mask = toByteMask(injectable);
    for (size_t i = 0; i < store.size(); ++i) {
        const Checkpoint &ckpt = store[i];
        resumed.restoreFrom(ckpt, golden.output());
        auto tail = resumed.runUntilInjectable(0, mask, 0,
                                               ckpt.instructions);
        EXPECT_EQ(tail.status, RunStatus::Completed) << "checkpoint " << i;
        EXPECT_EQ(tail.instructions, goldenRun.instructions)
            << "checkpoint " << i;
        EXPECT_EQ(resumed.output(), golden.output()) << "checkpoint " << i;
    }
}

TEST(CheckpointTest, RestoreReproducesRegistersAndMemoryExactly)
{
    auto prog = accumulateProgram(150);
    auto injectable = injectableWithoutProtection(prog);

    Simulator golden(prog);
    CheckpointStore store;
    golden.memory().resetDirtyTracking();
    CheckpointRecorder recorder(injectable, 128, golden, store);
    ASSERT_TRUE(golden.run(0, &recorder).completed());
    ASSERT_GT(store.size(), 1u);

    // Re-execute the prefix instruction-by-instruction on a fresh
    // simulator and compare full state against each restore.
    for (size_t i = 0; i < store.size(); ++i) {
        const Checkpoint &ckpt = store[i];
        Simulator replay(prog);
        auto prefix = replay.run(ckpt.instructions);
        ASSERT_EQ(prefix.status, RunStatus::Timeout)
            << "prefix replay should stop at the budget";
        ASSERT_EQ(prefix.instructions, ckpt.instructions);

        Simulator restored(prog);
        restored.restoreFrom(ckpt, golden.output());
        EXPECT_TRUE(restored.machine() == replay.machine())
            << "checkpoint " << i;
        EXPECT_EQ(restored.output().size(), ckpt.outputLength);
        EXPECT_EQ(restored.memory().hostRead32(prog.dataAddress("count")),
                  replay.memory().hostRead32(prog.dataAddress("count")))
            << "checkpoint " << i;
        EXPECT_EQ(restored.memory().hostRead32(prog.dataAddress("sum")),
                  replay.memory().hostRead32(prog.dataAddress("sum")))
            << "checkpoint " << i;
    }
}

TEST(CheckpointTest, DirtyDeltasKeepPerCheckpointContents)
{
    // The counter cell is rewritten every iteration, so every capture
    // re-snapshots the same page; each checkpoint must hold the value
    // as of *its* capture point, strictly increasing across
    // checkpoints.
    auto prog = accumulateProgram(300);
    auto injectable = injectableWithoutProtection(prog);

    Simulator golden(prog);
    CheckpointStore store;
    golden.memory().resetDirtyTracking();
    CheckpointRecorder recorder(injectable, 96, golden, store);
    ASSERT_TRUE(golden.run(0, &recorder).completed());
    ASSERT_GT(store.size(), 2u);

    Simulator restored(prog);
    uint32_t previous = 0;
    for (size_t i = 0; i < store.size(); ++i) {
        restored.restoreFrom(store[i], golden.output());
        uint32_t count =
            restored.memory().hostRead32(prog.dataAddress("count"));
        EXPECT_GT(count, previous) << "checkpoint " << i;
        previous = count;
    }
}

TEST(CheckpointTest, FindForInjectablePicksLatestEligible)
{
    auto prog = accumulateProgram(400);
    auto injectable = injectableWithoutProtection(prog);

    Simulator golden(prog);
    CheckpointStore store;
    golden.memory().resetDirtyTracking();
    CheckpointRecorder recorder(injectable, 64, golden, store);
    ASSERT_TRUE(golden.run(0, &recorder).completed());
    ASSERT_GT(store.size(), 2u);

    EXPECT_EQ(store.findForInjectable(0), nullptr)
        << "site before the first checkpoint";
    for (size_t i = 0; i + 1 < store.size(); ++i) {
        // A site exactly at checkpoint i's count must pick i, not i+1.
        const Checkpoint *hit =
            store.findForInjectable(store[i].injectableRetired);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->injectableRetired, store[i].injectableRetired);
        EXPECT_GE(hit->instructions, store[i].instructions);
    }
    const Checkpoint *last = store.findForInjectable(~uint64_t{0});
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->instructions, store[store.size() - 1].instructions);
}

// ---- campaign equivalence: checkpointing on vs. off ------------------------

void
expectIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.trialInstructions.count(), b.trialInstructions.count());
    EXPECT_DOUBLE_EQ(a.trialInstructions.mean(),
                     b.trialInstructions.mean());
    EXPECT_DOUBLE_EQ(a.trialInstructions.stdDev(),
                     b.trialInstructions.stdDev());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].run.status, b.outcomes[i].run.status)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].run.instructions,
                  b.outcomes[i].run.instructions)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].injected, b.outcomes[i].injected)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output)
            << "trial " << i;
    }
}

class CampaignEquivalenceTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CampaignEquivalenceTest, BitIdenticalWithCheckpointingOnOrOff)
{
    auto workload = workloads::createWorkload(GetParam(),
                                              workloads::Scale::Test);
    const auto &prog = workload->program();
    auto injectable = injectableWithoutProtection(prog);

    // Off: the classic full-replay Injector-hook path. On: a fine
    // interval so trials genuinely restore mid-run checkpoints.
    CampaignRunner fullReplay(prog, injectable, MemoryModel::Lenient, 0);
    CampaignRunner fastForward(prog, injectable, MemoryModel::Lenient,
                               512);
    ASSERT_GT(fastForward.checkpointCount(), 0u)
        << "interval too coarse: trials would never fast-forward";
    ASSERT_EQ(fullReplay.injectableDynamicCount(),
              fastForward.injectableDynamicCount());
    ASSERT_EQ(fullReplay.goldenOutput(), fastForward.goldenOutput());

    CampaignConfig config;
    config.trials = 32;
    config.seed = 0xc4e2;
    // errors == 0 exercises the jump-to-last-checkpoint path; 0
    // threads = all cores: equivalence must hold at every thread count.
    for (unsigned errors : {0u, 3u}) {
        config.errors = errors;
        for (unsigned threads : {1u, 4u, 0u}) {
            config.threads = threads;
            expectIdentical(fullReplay.run(config),
                            fastForward.run(config));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(TwoWorkloads, CampaignEquivalenceTest,
                         ::testing::Values("adpcm", "gsm"));

TEST(CheckpointTest, StudyCellsIdenticalWithCheckpointingOnOrOff)
{
    auto workload = workloads::createWorkload("adpcm",
                                              workloads::Scale::Test);
    core::StudyConfig off;
    off.trials = 12;
    off.checkpointInterval = 0;
    core::StudyConfig on = off;
    on.checkpointInterval = 256;

    core::ErrorToleranceStudy offStudy(*workload, off);
    core::ErrorToleranceStudy onStudy(*workload, on);
    for (auto mode : {core::ProtectionMode::Protected,
                      core::ProtectionMode::Unprotected}) {
        auto a = offStudy.runCell(4, mode);
        auto b = onStudy.runCell(4, mode);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.crashed, b.crashed);
        EXPECT_EQ(a.timedOut, b.timedOut);
        EXPECT_EQ(a.totalInstructions, b.totalInstructions);
        ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
        for (size_t i = 0; i < a.fidelities.size(); ++i)
            EXPECT_DOUBLE_EQ(a.fidelities[i].value, b.fidelities[i].value);
    }
}

} // namespace
