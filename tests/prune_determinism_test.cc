/**
 * @file
 * Bit-identity contract of the static-prune fast path: campaign
 * results with --static-prune on are byte-identical to results with
 * it off, at every thread count and checkpoint setting, while a
 * nonzero fraction of trials is synthesized instead of simulated.
 * This is the same contract checkpointing keeps -- pruning is a pure
 * acceleration, never a result change.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "fault/policy.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;
using namespace etc::fault;

CampaignConfig
cellConfig(unsigned threads, unsigned errors)
{
    CampaignConfig config;
    config.trials = 48;
    config.errors = errors;
    config.seed = 0xd5eed;
    config.threads = threads;
    return config;
}

/** Everything observable must match; trialsPruned alone may differ. */
void
expectIdentical(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.trialInstructions.count(), b.trialInstructions.count());
    EXPECT_DOUBLE_EQ(a.trialInstructions.mean(),
                     b.trialInstructions.mean());
    EXPECT_DOUBLE_EQ(a.trialInstructions.stdDev(),
                     b.trialInstructions.stdDev());
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        EXPECT_EQ(a.outcomes[i].run.status, b.outcomes[i].run.status)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].run.instructions,
                  b.outcomes[i].run.instructions)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].injected, b.outcomes[i].injected)
            << "trial " << i;
        EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output)
            << "trial " << i;
    }
}

/** A runner pair (prune off / prune on) for one workload x policy. */
struct RunnerPair
{
    std::unique_ptr<workloads::Workload> workload;
    std::vector<bool> injectable;
    std::unique_ptr<CampaignRunner> off;
    std::unique_ptr<CampaignRunner> on;

    RunnerPair(const std::string &name, const std::string &policyName,
               uint64_t checkpointInterval =
                   CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL)
    {
        workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        injectable =
            injectableWithoutProtection(workload->program());
        const InjectionPolicy &policy =
            resolveInjectionPolicy(policyName);
        off = std::make_unique<CampaignRunner>(
            workload->program(), injectable, sim::MemoryModel::Lenient,
            checkpointInterval, policy.resultKinds, policy.bitModel,
            false);
        on = std::make_unique<CampaignRunner>(
            workload->program(), injectable, sim::MemoryModel::Lenient,
            checkpointInterval, policy.resultKinds, policy.bitModel,
            true);
    }
};

TEST(PruneDeterminismTest, BitIdenticalOnOffAcrossThreadCounts)
{
    // The ISSUE's acceptance sweep: prune {off, on} x threads {1, 4}
    // x two workloads, every cell byte-identical.
    for (const char *name : {"mpeg", "adpcm"}) {
        RunnerPair pair(name, UNPROTECTED_POLICY);
        auto baseline = pair.off->run(cellConfig(1, 1));
        EXPECT_EQ(baseline.trialsPruned, 0u) << name;
        for (unsigned threads : {1u, 4u}) {
            auto config = cellConfig(threads, 1);
            expectIdentical(baseline, pair.off->run(config));
            auto pruned = pair.on->run(config);
            expectIdentical(baseline, pruned);
            // The fast path must demonstrably fire: these cells skip
            // a nonzero fraction of their trials.
            EXPECT_GT(pruned.trialsPruned, 0u)
                << name << " threads=" << threads;
        }
    }
}

TEST(PruneDeterminismTest, BitIdenticalWithCheckpointingOff)
{
    // Pruning composes with the classic full-replay Injector path
    // (checkpoint interval 0) exactly as with fast-forwarding.
    RunnerPair pair("mpeg", UNPROTECTED_POLICY, 0);
    auto config = cellConfig(1, 1);
    auto off = pair.off->run(config);
    auto on = pair.on->run(config);
    expectIdentical(off, on);
    EXPECT_GT(on.trialsPruned, 0u);
}

TEST(PruneDeterminismTest, BitIdenticalUnderProtectedPolicy)
{
    // The protected policy restricts injectable sites; pruning must
    // stay result-invariant there too (whether or not it fires).
    RunnerPair pair("adpcm", PROTECTED_POLICY);
    auto config = cellConfig(4, 2);
    expectIdentical(pair.off->run(config), pair.on->run(config));
}

TEST(PruneDeterminismTest, MultiErrorPlansPruneOnlyWhenAllFlipsDead)
{
    // errors > 1: a plan is only synthesized when EVERY drawn flip
    // lands in dead bits, so the pruned count can only shrink as the
    // error count grows -- and identity still holds.
    RunnerPair pair("mpeg", UNPROTECTED_POLICY);
    auto one = pair.on->run(cellConfig(1, 1));
    auto three = pair.on->run(cellConfig(1, 3));
    expectIdentical(pair.off->run(cellConfig(1, 3)), three);
    EXPECT_GE(one.trialsPruned, three.trialsPruned);
}

TEST(PruneDeterminismTest, PrunableDynamicCountExposed)
{
    RunnerPair pair("mpeg", UNPROTECTED_POLICY);
    EXPECT_EQ(pair.off->prunableDynamicCount(), 0u);
    EXPECT_GT(pair.on->prunableDynamicCount(), 0u);
    EXPECT_LE(pair.on->prunableDynamicCount(),
              pair.on->injectableDynamicCount());
    EXPECT_TRUE(pair.on->staticPrune());
    EXPECT_FALSE(pair.off->staticPrune());
}

TEST(PruneDeterminismTest, ShardedRunsCarryPrunedCounts)
{
    // trialsPruned is an order-insensitive sum: shards of a cell sum
    // to the monolithic count, and the merged records stay identical.
    RunnerPair pair("adpcm", UNPROTECTED_POLICY);
    auto config = cellConfig(2, 1);
    auto whole = pair.on->run(config);
    std::vector<CampaignResult> shards;
    shards.push_back(pair.on->runRange(config, 0, 20));
    shards.push_back(pair.on->runRange(config, 20, 48));
    auto merged = CampaignRunner::mergeShards(std::move(shards));
    expectIdentical(whole, merged);
    EXPECT_EQ(whole.trialsPruned, merged.trialsPruned);
}

TEST(PruneDeterminismTest, StudyCellIdenticalWithPruneOn)
{
    // End-to-end through the study layer: summaries and per-trial
    // fidelity scores -- the figures' inputs -- are identical, with
    // the pruned count surfaced on the summary.
    auto workload = workloads::createWorkload("mpeg",
                                              workloads::Scale::Test);
    core::StudyConfig offConfig;
    offConfig.trials = 32;
    core::StudyConfig onConfig = offConfig;
    onConfig.staticPrune = true;
    onConfig.threads = 4;

    core::ErrorToleranceStudy off(*workload, offConfig);
    core::ErrorToleranceStudy on(*workload, onConfig);
    auto a = off.runCell(1, fault::UNPROTECTED_POLICY);
    auto b = on.runCell(1, fault::UNPROTECTED_POLICY);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.trialsPruned, 0u);
    EXPECT_GT(b.trialsPruned, 0u);
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i)
        EXPECT_DOUBLE_EQ(a.fidelities[i].value, b.fidelities[i].value);
}

} // namespace
