/**
 * @file
 * Tests for the fidelity metrics (PSNR / SNR / byte similarity /
 * stream reinterpretation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fidelity/metrics.hh"

namespace {

using namespace etc::fidelity;

TEST(MseTest, KnownValues)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(meanSquaredError({10, 20}, {10, 20}), 0.0);
    EXPECT_DOUBLE_EQ(meanSquaredError({10}, {13}), 9.0);
    EXPECT_DOUBLE_EQ(meanSquaredError({0, 0}, {3, 4}), 12.5);
}

TEST(MseTest, LengthMismatchZeroPads)
{
    // Missing test bytes count as zeros.
    EXPECT_DOUBLE_EQ(meanSquaredError({4, 4}, {4}), 8.0);
    EXPECT_DOUBLE_EQ(meanSquaredError({4}, {4, 4}), 8.0);
}

TEST(PsnrTest, IdenticalIsPerfect)
{
    std::vector<uint8_t> img = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(psnrDb(img, img), PERFECT_DB);
}

TEST(PsnrTest, KnownValue)
{
    // MSE = 4 -> PSNR = 10*log10(255^2/4) = 42.11 dB.
    std::vector<uint8_t> ref = {100, 100, 100, 100};
    std::vector<uint8_t> test = {102, 98, 102, 98};
    EXPECT_NEAR(psnrDb(ref, test), 42.11, 0.01);
}

TEST(PsnrTest, EmptyTestIsWorstCase)
{
    EXPECT_DOUBLE_EQ(psnrDb({1, 2, 3}, {}), 0.0);
}

TEST(PsnrTest, Monotone)
{
    std::vector<uint8_t> ref(64, 128);
    std::vector<uint8_t> mild(ref), severe(ref);
    mild[0] = 130;
    for (size_t i = 0; i < severe.size(); ++i)
        severe[i] = 255 - severe[i];
    EXPECT_GT(psnrDb(ref, mild), psnrDb(ref, severe));
}

TEST(SnrTest, IdenticalIsPerfect)
{
    std::vector<int16_t> sig = {100, -200, 300};
    EXPECT_DOUBLE_EQ(snrDb(sig, sig), PERFECT_DB);
}

TEST(SnrTest, KnownValue)
{
    // signal power 100^2*4, noise 10^2*4 -> SNR = 20 dB.
    std::vector<int16_t> ref = {100, -100, 100, -100};
    std::vector<int16_t> test = {110, -110, 110, -110};
    EXPECT_NEAR(snrDb(ref, test), 20.0, 1e-9);
}

TEST(SnrTest, ZeroSignalWithNoiseIsFloor)
{
    std::vector<int16_t> ref = {0, 0};
    std::vector<int16_t> test = {5, 5};
    EXPECT_DOUBLE_EQ(snrDb(ref, test), -PERFECT_DB);
}

TEST(SnrTest, EmptyIsPerfect)
{
    EXPECT_DOUBLE_EQ(snrDb(std::vector<int16_t>{},
                           std::vector<int16_t>{}),
                     PERFECT_DB);
}

TEST(SnrTest, DoubleOverloadAgrees)
{
    std::vector<int16_t> ref16 = {100, -100};
    std::vector<int16_t> test16 = {90, -110};
    std::vector<double> refD = {100, -100};
    std::vector<double> testD = {90, -110};
    EXPECT_DOUBLE_EQ(snrDb(ref16, test16), snrDb(refD, testD));
}

TEST(ByteSimilarityTest, Basics)
{
    EXPECT_DOUBLE_EQ(byteSimilarity({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(byteSimilarity({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
    EXPECT_DOUBLE_EQ(byteSimilarity({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
    EXPECT_DOUBLE_EQ(byteSimilarity({1, 2, 3, 4}, {}), 0.0);
}

TEST(ByteSimilarityTest, ExtraBytesCountAsMismatch)
{
    EXPECT_DOUBLE_EQ(byteSimilarity({1, 2}, {1, 2, 9, 9}), 0.5);
}

TEST(ReinterpretTest, Int16RoundTrip)
{
    std::vector<uint8_t> bytes = {0x34, 0x12, 0xff, 0xff};
    auto vals = asInt16(bytes);
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0], 0x1234);
    EXPECT_EQ(vals[1], -1);
}

TEST(ReinterpretTest, Int32RoundTrip)
{
    std::vector<uint8_t> bytes = {0x78, 0x56, 0x34, 0x12,
                                  0xff, 0xff, 0xff, 0xff};
    auto vals = asInt32(bytes);
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0], 0x12345678);
    EXPECT_EQ(vals[1], -1);
}

TEST(ReinterpretTest, FloatRoundTrip)
{
    float f = -12.75f;
    uint32_t bits;
    std::memcpy(&bits, &f, 4);
    std::vector<uint8_t> bytes;
    for (int b = 0; b < 4; ++b)
        bytes.push_back(static_cast<uint8_t>(bits >> (8 * b)));
    auto vals = asFloat(bytes);
    ASSERT_EQ(vals.size(), 1u);
    EXPECT_EQ(vals[0], -12.75f);
}

TEST(ReinterpretTest, TruncatesPartialWords)
{
    EXPECT_TRUE(asInt32({1, 2, 3}).empty());
    EXPECT_EQ(asInt16({1, 2, 3}).size(), 1u);
}

} // namespace
