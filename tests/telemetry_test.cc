/**
 * @file
 * Telemetry tests: the sharded registry merges concurrent increments
 * exactly, the Prometheus exposition renders validly (one header per
 * family, cumulative histogram buckets), and the span tracer emits
 * well-formed Chrome Trace Event JSONL -- while staying a no-op when
 * disabled. The registry is process-global, so every test uses names
 * unique to this binary.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace {

using namespace etc;
using namespace etc::telemetry;

// ---- sharded primitives ---------------------------------------------------

TEST(Counter, ConcurrentIncrementsMergeExactly)
{
    Counter &hits = counter("etc_test_concurrent_total",
                            "telemetry_test concurrent counter");
    constexpr unsigned THREADS = 8;
    constexpr uint64_t PER_THREAD = 10000;

    uint64_t before = hits.value();
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < THREADS; ++i)
        workers.emplace_back([&hits] {
            for (uint64_t n = 0; n < PER_THREAD; ++n)
                hits.add();
        });
    for (auto &worker : workers)
        worker.join();

    // Wait-free relaxed shard adds must still never lose a tick.
    EXPECT_EQ(hits.value(), before + THREADS * PER_THREAD);
}

TEST(Counter, RegistrationIsIdempotent)
{
    Counter &a = counter("etc_test_idempotent_total", "same series");
    Counter &b = counter("etc_test_idempotent_total", "same series");
    EXPECT_EQ(&a, &b);

    // Same family, different labels: distinct series.
    Counter &ok = counter("etc_test_labeled_total", "code=\"200\"",
                          "labeled family");
    Counter &bad = counter("etc_test_labeled_total", "code=\"500\"",
                           "labeled family");
    EXPECT_NE(&ok, &bad);
}

TEST(Counter, KindMismatchPanics)
{
    counter("etc_test_kind_total", "registered as a counter");
    EXPECT_THROW(gauge("etc_test_kind_total", "now as a gauge"),
                 PanicError);
}

TEST(Gauge, SetAndAdjust)
{
    Gauge &depth = gauge("etc_test_depth", "telemetry_test gauge");
    depth.set(7);
    EXPECT_EQ(depth.value(), 7);
    depth.add(-3);
    EXPECT_EQ(depth.value(), 4);
    depth.set(0);
}

TEST(Histogram, ConcurrentObservationsMergeExactly)
{
    Histogram &latency =
        histogram("etc_test_latency_seconds",
                  "telemetry_test histogram", {0.5, 1.0, 2.0});
    constexpr unsigned THREADS = 4;

    uint64_t countBefore = latency.count();
    double sumBefore = latency.sum();
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < THREADS; ++i)
        workers.emplace_back([&latency] {
            for (unsigned n = 0; n < 1000; ++n) {
                latency.observe(0.25); // bucket le=0.5
                latency.observe(1.5);  // bucket le=2.0
                latency.observe(9.0);  // +Inf overflow bucket
            }
        });
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(latency.count(), countBefore + THREADS * 3000);
    EXPECT_DOUBLE_EQ(latency.sum(),
                     sumBefore + THREADS * 1000 * (0.25 + 1.5 + 9.0));

    auto buckets = latency.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + overflow
    EXPECT_GE(buckets[0], THREADS * 1000u); // 0.25s
    EXPECT_EQ(buckets[1], 0u);              // nothing in (0.5, 1]
    EXPECT_GE(buckets[2], THREADS * 1000u); // 1.5s
    EXPECT_GE(buckets[3], THREADS * 1000u); // 9s overflow
}

TEST(Histogram, UnsortedBoundsPanic)
{
    EXPECT_THROW(histogram("etc_test_bad_bounds", "descending bounds",
                           {2.0, 1.0}),
                 PanicError);
}

// ---- exposition format ----------------------------------------------------

TEST(Exposition, EscapesLabelValues)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeLabelValue("two\nlines"), "two\\nlines");
}

/** Families in a scrape, with header/sample bookkeeping. */
struct ScrapeShape
{
    std::map<std::string, std::string> types;  //!< family -> TYPE
    std::map<std::string, unsigned> headers;   //!< family -> # TYPE count
    std::vector<std::string> samples;          //!< raw sample lines
};

ScrapeShape
parseScrape(const std::string &text)
{
    ScrapeShape shape;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream header(line.substr(7));
            std::string family, type;
            header >> family >> type;
            EXPECT_TRUE(type == "counter" || type == "gauge" ||
                        type == "histogram")
                << line;
            shape.types[family] = type;
            ++shape.headers[family];
            continue;
        }
        if (line.rfind("# HELP ", 0) == 0)
            continue;
        EXPECT_NE(line[0], '#') << "unexpected comment: " << line;
        shape.samples.push_back(line);
    }
    return shape;
}

TEST(Exposition, RendersValidFamiliesAndSamples)
{
    counter("etc_test_render_total", "exercised by the render test")
        .add(3);
    gauge("etc_test_render_gauge", "exercised by the render test")
        .set(-2);
    histogram("etc_test_render_seconds",
              "exercised by the render test", {0.1, 1.0})
        .observe(0.05);

    std::string text = renderPrometheus();
    ScrapeShape shape = parseScrape(text);

    // One # TYPE header per family, even for multi-series families.
    for (const auto &[family, count] : shape.headers)
        EXPECT_EQ(count, 1u) << family << " has duplicate headers";

    EXPECT_EQ(shape.types.at("etc_test_render_total"), "counter");
    EXPECT_EQ(shape.types.at("etc_test_render_gauge"), "gauge");
    EXPECT_EQ(shape.types.at("etc_test_render_seconds"), "histogram");

    // The built-ins every scrape refreshes.
    EXPECT_EQ(shape.types.at("etc_uptime_milliseconds"), "gauge");
    EXPECT_EQ(shape.types.at("etc_build_info"), "gauge");

    // Every sample line is "<series> <value>" with a parseable value.
    std::set<std::string> series;
    for (const auto &line : shape.samples) {
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_NO_THROW((void)std::stod(line.substr(space + 1)))
            << line;
        series.insert(line.substr(0, space));
    }

    EXPECT_TRUE(series.count("etc_test_render_total"));
    EXPECT_TRUE(series.count("etc_test_render_gauge"));

    // Histogram expansion: every bound's bucket, +Inf, sum, count.
    EXPECT_TRUE(series.count(
        "etc_test_render_seconds_bucket{le=\"0.1\"}"));
    EXPECT_TRUE(series.count(
        "etc_test_render_seconds_bucket{le=\"1\"}"));
    EXPECT_TRUE(series.count(
        "etc_test_render_seconds_bucket{le=\"+Inf\"}"));
    EXPECT_TRUE(series.count("etc_test_render_seconds_sum"));
    EXPECT_TRUE(series.count("etc_test_render_seconds_count"));
}

TEST(Exposition, HistogramBucketsAreCumulative)
{
    Histogram &h = histogram("etc_test_cumulative_seconds",
                             "cumulative-bucket check", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(99.0);

    ScrapeShape shape = parseScrape(renderPrometheus());
    std::map<std::string, double> values;
    for (const auto &line : shape.samples) {
        size_t space = line.rfind(' ');
        values[line.substr(0, space)] =
            std::stod(line.substr(space + 1));
    }

    double le1 =
        values.at("etc_test_cumulative_seconds_bucket{le=\"1\"}");
    double le2 =
        values.at("etc_test_cumulative_seconds_bucket{le=\"2\"}");
    double inf =
        values.at("etc_test_cumulative_seconds_bucket{le=\"+Inf\"}");
    EXPECT_LE(le1, le2);
    EXPECT_LE(le2, inf);
    EXPECT_EQ(inf, values.at("etc_test_cumulative_seconds_count"));
    EXPECT_GE(le1, 1.0);
    EXPECT_GE(le2, 2.0);
    EXPECT_GE(inf, 3.0);
}

TEST(Exposition, LabeledSeriesShareOneHeader)
{
    counter("etc_test_shared_total", "endpoint=\"/v1/a\"",
            "labeled family header check")
        .add();
    counter("etc_test_shared_total", "endpoint=\"/v1/b\"",
            "labeled family header check")
        .add(2);

    ScrapeShape shape = parseScrape(renderPrometheus());
    EXPECT_EQ(shape.headers.at("etc_test_shared_total"), 1u);

    unsigned seriesSeen = 0;
    for (const auto &line : shape.samples)
        if (line.rfind("etc_test_shared_total{", 0) == 0)
            ++seriesSeen;
    EXPECT_EQ(seriesSeen, 2u);
}

// ---- tracer ---------------------------------------------------------------

class TracerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("etc_telemetry_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                 ".jsonl");
        std::filesystem::remove(path_);
    }

    void
    TearDown() override
    {
        Tracer::instance().close();
        std::filesystem::remove(path_);
    }

    std::vector<std::string>
    traceLines()
    {
        std::ifstream file(path_);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(file, line))
            if (!line.empty())
                lines.push_back(line);
        return lines;
    }

    std::filesystem::path path_;
};

TEST_F(TracerTest, DisabledSpansEmitNothing)
{
    ASSERT_FALSE(Tracer::instance().enabled());
    {
        TraceSpan span("test", "disabled");
        EXPECT_FALSE(span.active());
    }
    Tracer::instance().emitComplete("test", "ignored", 0, 1);
    EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(TracerTest, EmitsOneJsonObjectPerSpan)
{
    Tracer &tracer = Tracer::instance();
    tracer.open(path_.string());
    ASSERT_TRUE(tracer.enabled());

    {
        TraceSpan span("test", "outer");
        ASSERT_TRUE(span.active());
        span.setArgs("{\"trial\":17}");
        TraceSpan inner("test", "inner");
    }
    tracer.close();
    EXPECT_FALSE(tracer.enabled());

    auto lines = traceLines();
    ASSERT_EQ(lines.size(), 2u);
    // Inner destructs (and so emits) first.
    EXPECT_NE(lines[0].find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"args\":{\"trial\":17}"),
              std::string::npos);
    for (const auto &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos);
        EXPECT_NE(line.find("\"cat\":\"test\""), std::string::npos);
        EXPECT_NE(line.find("\"ts\":"), std::string::npos);
        EXPECT_NE(line.find("\"dur\":"), std::string::npos);
    }
}

TEST_F(TracerTest, CloseIsIdempotentAndReopenTruncates)
{
    Tracer &tracer = Tracer::instance();
    tracer.open(path_.string());
    tracer.emitComplete("test", "first", 1, 2);
    tracer.close();
    tracer.close();
    ASSERT_EQ(traceLines().size(), 1u);

    tracer.open(path_.string());
    tracer.emitComplete("test", "second", 3, 4);
    tracer.close();
    auto lines = traceLines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"name\":\"second\""),
              std::string::npos);
}

} // namespace
