/**
 * @file
 * Secondary-index contract tests: incremental maintenance (journal
 * appends from store writes) folds to the byte-identical manifest a
 * from-scratch rebuild produces, torn journal lines and corrupt
 * record files are counted/quarantined instead of crashing, orphaned
 * shard directories are detected, and concurrent writers keep the
 * journal decodable (the TSan CI job runs this binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include "store/cell_key.hh"
#include "store/index.hh"
#include "store/result_store.hh"

namespace {

using namespace etc;
using namespace etc::store;

namespace fs = std::filesystem;

CellKey
sampleKey(const std::string &workload, const std::string &policy,
          unsigned errors, unsigned trials = 8)
{
    CellKey key;
    key.workload = workload;
    key.policy = policy;
    key.errors = errors;
    key.trials = trials;
    key.seed = 0xbe7cull;
    key.budgetFactor = 10.0;
    key.memoryModel = "lenient";
    key.programHash = "0xdeadbeefcafef00d";
    return key;
}

core::CellSummary
sampleSummary(unsigned trials = 8)
{
    core::CellSummary summary;
    summary.errors = 5;
    summary.policy = "protected";
    summary.trials = trials;
    summary.completed = trials > 3 ? trials - 3 : 0;
    summary.crashed = trials > 3 ? 2 : 0;
    summary.timedOut = trials > 3 ? 1 : 0;
    summary.totalInstructions = 123456789012345ull;
    summary.wallSeconds = 1.25;
    for (unsigned i = 0; i < summary.completed; ++i) {
        workloads::FidelityScore score;
        switch (i % 4) {
          case 0: score.value = 31.4159; break;
          case 1: score.value = -0.0; break;
          case 2: score.value = std::numeric_limits<double>::infinity();
                  break;
          case 3: score.value = 5e-324; break;
        }
        score.acceptable = i % 2 == 0;
        score.unit = "dB";
        summary.fidelities.push_back(score);
    }
    return summary;
}

class StoreIndexTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::temp_directory_path() /
                ("etc_index_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        fs::remove_all(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    std::string
    manifestOf(StoreIndex &index)
    {
        index.load();
        return index.encodeManifest();
    }

    std::filesystem::path root_;
};

// The core determinism contract: an index maintained incrementally by
// store writes (shard -> shard -> promote -> drop, plus a partial
// cell left as shards) must encode the byte-identical manifest a
// full-scan rebuild produces -- queries may trust either path.
TEST_F(StoreIndexTest, IncrementalMatchesRebuild)
{
    ResultStore cache(root_.string());

    // Cell A: sharded, merged, promoted, shards dropped.
    CellKey a = sampleKey("gsm", "protected", 5, 20);
    auto shard = sampleSummary(10);
    cache.storeShard(a, 0, 10, shard);
    cache.storeShard(a, 10, 20, shard);
    cache.storeCell(a, sampleSummary(20));
    cache.dropShards(a);

    // Cell B: complete in one write.
    CellKey b = sampleKey("gsm", "unprotected", 5, 20);
    cache.storeCell(b, sampleSummary(20));

    // Cell C: still partial -- shards only.
    CellKey c = sampleKey("adpcm", "protected", 3, 20);
    cache.storeShard(c, 0, 10, shard);

    StoreIndex incremental(root_.string());
    std::string viaJournal = manifestOf(incremental);
    EXPECT_EQ(incremental.entries().size(), 3u);
    EXPECT_TRUE(incremental.hasCell(a.fingerprint()));
    EXPECT_TRUE(incremental.hasCell(b.fingerprint()));
    EXPECT_FALSE(incremental.hasCell(c.fingerprint()));
    auto partial = incremental.entries().at(c.fingerprint());
    EXPECT_EQ(partial.shardRanges.size(), 1u);
    EXPECT_EQ(partial.shardRanges.count({0u, 10u}), 1u);

    StoreIndex rebuilt(root_.string());
    rebuilt.load();
    auto report = rebuilt.rebuild();
    EXPECT_EQ(report.cells, 2u);
    EXPECT_EQ(report.shardSets, 1u);
    EXPECT_TRUE(report.orphanedShards.empty());
    EXPECT_TRUE(report.corruptRecords.empty());
    EXPECT_EQ(manifestOf(rebuilt), viaJournal);

    // Compacting the incremental index must be a fixed point: the
    // reloaded state encodes the same bytes again.
    incremental.load();
    incremental.compact();
    StoreIndex reloaded(root_.string());
    EXPECT_EQ(manifestOf(reloaded), viaJournal);
    EXPECT_TRUE(reloaded.health().manifestPresent);
    EXPECT_EQ(reloaded.health().journalEntries, 0u);
}

TEST_F(StoreIndexTest, TornJournalLineIsCountedNotFatal)
{
    ResultStore cache(root_.string());
    cache.storeCell(sampleKey("gsm", "protected", 5), sampleSummary());

    // A torn/garbled final line (no checksum seal) and a sealed line
    // whose body was tampered with must both be skipped and counted.
    {
        std::ofstream journal(root_ / "index" / "journal.jsonl",
                              std::ios::app);
        journal << "{\"schema\":1,\"kind\":\"cell\",\"fing";
        journal << '\n';
        journal << "{\"schema\":1,\"kind\":\"cell\",\"tampered\":true,"
                   "\"fnv\":\"0x0\"}\n";
    }

    StoreIndex index(root_.string());
    index.load();
    EXPECT_EQ(index.entries().size(), 1u);
    EXPECT_EQ(index.health().journalCorrupt, 2u);
    EXPECT_EQ(index.health().cells, 1u);
}

TEST_F(StoreIndexTest, RebuildQuarantinesCorruptRecords)
{
    ResultStore cache(root_.string());
    CellKey good = sampleKey("gsm", "protected", 5, 20);
    cache.storeCell(good, sampleSummary(20));
    CellKey partial = sampleKey("adpcm", "protected", 3, 20);
    cache.storeShard(partial, 0, 10, sampleSummary(10));

    // A garbage cell file and a truncated shard file.
    std::string badCell = "00112233445566ff.jsonl";
    { std::ofstream(root_ / "cells" / badCell) << "not json at all\n"; }
    auto shardDir = root_ / "shards" / partial.fingerprint();
    std::string truncated;
    {
        std::ifstream in(shardDir / "0-10.jsonl");
        std::getline(in, truncated);
    }
    { std::ofstream(shardDir / "10-20.jsonl")
          << truncated.substr(0, truncated.size() / 2); }

    StoreIndex index(root_.string());
    index.load();
    auto report = index.rebuild(/*quarantine=*/true);
    EXPECT_EQ(report.cells, 1u);
    EXPECT_EQ(report.shardSets, 1u);
    ASSERT_EQ(report.corruptRecords.size(), 2u);
    EXPECT_EQ(report.quarantined, 2u);

    // The corrupt files moved under index/quarantine/, mirroring
    // their store-relative paths; the good records stayed put.
    EXPECT_FALSE(fs::exists(root_ / "cells" / badCell));
    EXPECT_FALSE(fs::exists(shardDir / "10-20.jsonl"));
    EXPECT_TRUE(
        fs::exists(root_ / "index" / "quarantine" / "cells" / badCell));
    EXPECT_TRUE(fs::exists(root_ / "index" / "quarantine" / "shards" /
                           partial.fingerprint() / "10-20.jsonl"));
    EXPECT_TRUE(fs::exists(root_ / "cells" /
                           (good.fingerprint() + ".jsonl")));
    EXPECT_TRUE(fs::exists(shardDir / "0-10.jsonl"));

    // Without the flag the same corruption is only reported.
    { std::ofstream(root_ / "cells" / badCell) << "still not json\n"; }
    auto report2 = index.rebuild(/*quarantine=*/false);
    EXPECT_EQ(report2.corruptRecords.size(), 1u);
    EXPECT_EQ(report2.quarantined, 0u);
    EXPECT_TRUE(fs::exists(root_ / "cells" / badCell));
}

TEST_F(StoreIndexTest, RebuildReportsOrphanedShards)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey("gsm", "protected", 5, 20);
    cache.storeShard(key, 0, 10, sampleSummary(10));
    cache.storeCell(key, sampleSummary(20));
    // The cell is complete but dropShards() never ran (interrupted
    // promotion): the shard directory is an orphan, reported and left
    // in place.
    StoreIndex index(root_.string());
    index.load();
    EXPECT_EQ(index.health().orphanedShards, 1u);

    auto report = index.rebuild();
    EXPECT_EQ(report.cells, 1u);
    EXPECT_EQ(report.shardSets, 0u);
    ASSERT_EQ(report.orphanedShards.size(), 1u);
    EXPECT_NE(report.orphanedShards[0].find(key.fingerprint()),
              std::string::npos);
    EXPECT_TRUE(fs::exists(root_ / "shards" / key.fingerprint() /
                           "0-10.jsonl"));
}

// Many threads appending through their own ResultStore instances must
// leave a fully decodable journal (each entry is one O_APPEND write).
// The TSan CI job runs this test to pin the data-race contract.
TEST_F(StoreIndexTest, ConcurrentWritersKeepJournalDecodable)
{
    constexpr int WRITERS = 4;
    constexpr int CELLS_PER_WRITER = 24;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < WRITERS; ++w)
        threads.emplace_back([&, w] {
            ResultStore cache(root_.string());
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < CELLS_PER_WRITER; ++i) {
                CellKey key = sampleKey("gsm", "protected",
                                        1 + (unsigned)i, 20);
                key.seed = 0x1000u + (uint64_t)w;
                auto shard = sampleSummary(10);
                cache.storeShard(key, 0, 10, shard);
                cache.storeCell(key, sampleSummary(20));
                cache.dropShards(key);
            }
        });
    go = true;
    for (auto &t : threads)
        t.join();

    StoreIndex index(root_.string());
    index.load();
    EXPECT_EQ(index.health().journalCorrupt, 0u);
    EXPECT_EQ(index.entries().size(),
              (size_t)WRITERS * CELLS_PER_WRITER);
    for (const auto &[fingerprint, entry] : index.entries()) {
        EXPECT_TRUE(entry.complete) << fingerprint;
        EXPECT_TRUE(entry.shardRanges.empty()) << fingerprint;
    }

    // And the incremental result still matches a rebuild.
    std::string viaJournal = index.encodeManifest();
    auto report = index.rebuild();
    EXPECT_EQ(report.cells, (uint64_t)WRITERS * CELLS_PER_WRITER);
    index.load();
    EXPECT_EQ(index.encodeManifest(), viaJournal);
}

} // namespace
