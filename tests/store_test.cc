/**
 * @file
 * Result-store contract tests: canonical cell keys, JSONL record
 * round-trips (bit-exact, including doubles via their IEEE-754 bit
 * patterns), rejection of truncated/corrupt/version-skewed records
 * with a versioned StoreFormatError (never a crash), and the on-disk
 * ResultStore cell/shard lifecycle.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <thread>

#include "store/cell_key.hh"
#include "store/json.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "support/rng.hh"

namespace {

using namespace etc;
using namespace etc::store;

CellKey
sampleKey(unsigned trials = 8)
{
    CellKey key;
    key.workload = "gsm";
    key.policy = "protected";
    key.errors = 5;
    key.trials = trials;
    key.seed = 0xbe7cull;
    key.budgetFactor = 10.0;
    key.memoryModel = "lenient";
    key.programHash = "0xdeadbeefcafef00d";
    return key;
}

core::CellSummary
sampleSummary(unsigned trials = 8)
{
    core::CellSummary summary;
    summary.errors = 5;
    summary.policy = "protected";
    summary.trials = trials;
    summary.completed = trials - 3;
    summary.crashed = 2;
    summary.timedOut = 1;
    summary.totalInstructions = 123456789012345ull;
    summary.wallSeconds = 1.25;
    for (unsigned i = 0; i < summary.completed; ++i) {
        workloads::FidelityScore score;
        // Exercise awkward doubles: negatives, subnormals, inf, NaN.
        switch (i % 5) {
          case 0: score.value = 31.4159; break;
          case 1: score.value = -0.0; break;
          case 2: score.value = std::numeric_limits<double>::infinity();
                  break;
          case 3: score.value = std::nan(""); break;
          case 4: score.value = 5e-324; break;
        }
        score.acceptable = i % 2 == 0;
        score.unit = "dB \"quoted\"\nunit";
        summary.fidelities.push_back(score);
    }
    return summary;
}

void
expectSummariesIdentical(const core::CellSummary &a,
                         const core::CellSummary &b)
{
    EXPECT_EQ(a.errors, b.errors);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.trialsPruned, b.trialsPruned);
    EXPECT_EQ(doubleBits(a.wallSeconds), doubleBits(b.wallSeconds));
    ASSERT_EQ(a.fidelities.size(), b.fidelities.size());
    for (size_t i = 0; i < a.fidelities.size(); ++i) {
        EXPECT_EQ(doubleBits(a.fidelities[i].value),
                  doubleBits(b.fidelities[i].value))
            << "fidelity " << i;
        EXPECT_EQ(a.fidelities[i].acceptable, b.fidelities[i].acceptable);
        EXPECT_EQ(a.fidelities[i].unit, b.fidelities[i].unit);
    }
}

// ---- keys -----------------------------------------------------------------

TEST(CellKeyTest, CanonicalFormCoversEveryField)
{
    CellKey key = sampleKey();
    std::string canonical = key.canonical();
    for (const char *piece :
         {"workload=gsm", "mode=protected", "errors=5", "trials=8",
          "seed=0xbe7c", "memory_model=lenient",
          "program=0xdeadbeefcafef00d", "schema=1"})
        EXPECT_NE(canonical.find(piece), std::string::npos) << piece;

    // Any field change must change the identity and the fingerprint.
    for (auto mutate : std::vector<std::function<void(CellKey &)>>{
             [](CellKey &k) { k.workload = "art"; },
             [](CellKey &k) { k.policy = "unprotected"; },
             [](CellKey &k) { k.errors += 1; },
             [](CellKey &k) { k.trials += 1; },
             [](CellKey &k) { k.seed += 1; },
             [](CellKey &k) { k.budgetFactor += 0.5; },
             [](CellKey &k) { k.memoryModel = "strict"; },
             [](CellKey &k) { k.programHash = "0x1"; },
             [](CellKey &k) { k.policyHash = "0xdeadbeef"; }}) {
        CellKey other = sampleKey();
        mutate(other);
        EXPECT_FALSE(other == key);
        EXPECT_NE(other.fingerprint(), key.fingerprint());
    }
}

TEST(CellKeyTest, FingerprintIsStableHex16)
{
    CellKey key = sampleKey();
    std::string fp = key.fingerprint();
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(fp, sampleKey().fingerprint());
}

TEST(CellKeyTest, HexRoundTrip)
{
    for (uint64_t v : {0ull, 1ull, 0xbe7cull, ~0ull, 1ull << 63})
        EXPECT_EQ(parseHexU64(hexU64(v)), v);
    EXPECT_THROW(parseHexU64("123"), std::invalid_argument);
    EXPECT_THROW(parseHexU64("0x"), std::invalid_argument);
    EXPECT_THROW(parseHexU64("0xg"), std::invalid_argument);
    EXPECT_THROW(parseHexU64("0x12345678901234567"),
                 std::invalid_argument);
}

TEST(CellKeyTest, DoubleBitsRoundTripIncludingNan)
{
    for (double v : {0.0, -0.0, 10.0, -1.5e300, 5e-324,
                     std::numeric_limits<double>::infinity()})
        EXPECT_EQ(doubleBits(doubleFromBits(doubleBits(v))),
                  doubleBits(v));
    double nan = std::nan("");
    EXPECT_EQ(doubleBits(doubleFromBits(doubleBits(nan))),
              doubleBits(nan));
}

// ---- record round-trips ---------------------------------------------------

TEST(RecordCodecTest, CellRoundTripIsBitExact)
{
    CellKey key = sampleKey();
    auto summary = sampleSummary();
    std::string text = encodeCellRecord(key, summary);
    auto decoded = decodeCellRecord(text, &key);
    expectSummariesIdentical(summary, decoded);
    // Encoding is deterministic: re-encoding the decode is identical.
    EXPECT_EQ(encodeCellRecord(key, decoded), text);
}

TEST(RecordCodecTest, ShardRoundTripIsBitExact)
{
    CellKey key = sampleKey(20);
    auto summary = sampleSummary();
    std::string text = encodeShardRecord(key, 4, 12, summary);
    auto decoded = decodeShardRecord(text, &key);
    EXPECT_EQ(decoded.lo, 4u);
    EXPECT_EQ(decoded.hi, 12u);
    EXPECT_TRUE(decoded.key == key);
    expectSummariesIdentical(summary, decoded.summary);
}

TEST(RecordCodecTest, EmptyCellRoundTrips)
{
    CellKey key = sampleKey(3);
    core::CellSummary summary;
    summary.errors = key.errors;
    summary.policy = "protected";
    summary.trials = 3;
    summary.crashed = 3; // nothing completed: no fidelity lines
    auto decoded = decodeCellRecord(encodeCellRecord(key, summary), &key);
    expectSummariesIdentical(summary, decoded);
}

TEST(RecordCodecTest, TrialsPrunedIsOptionalAndRoundTrips)
{
    // trials_pruned is emitted only when nonzero, so prune-off records
    // stay byte-identical to pre-prune ones; a nonzero count survives
    // the roundtrip and deterministic re-encode.
    CellKey key = sampleKey();
    auto summary = sampleSummary();
    std::string withoutField = encodeCellRecord(key, summary);
    EXPECT_EQ(withoutField.find("trials_pruned"), std::string::npos);

    summary.trialsPruned = 7;
    std::string text = encodeCellRecord(key, summary);
    EXPECT_NE(text.find("\"trials_pruned\":7"), std::string::npos);
    auto decoded = decodeCellRecord(text, &key);
    expectSummariesIdentical(summary, decoded);
    EXPECT_EQ(encodeCellRecord(key, decoded), text);

    // Shard records carry the count too (shard merges sum it).
    CellKey shardKey = sampleKey(20);
    auto shard = decodeShardRecord(
        encodeShardRecord(shardKey, 4, 12, summary), &shardKey);
    EXPECT_EQ(shard.summary.trialsPruned, 7u);
}

TEST(RecordCodecTest, KeyMismatchIsRejected)
{
    CellKey key = sampleKey();
    std::string text = encodeCellRecord(key, sampleSummary());
    CellKey other = sampleKey();
    other.seed ^= 1;
    EXPECT_THROW(decodeCellRecord(text, &other), StoreFormatError);
    // Without an expectation the same record is fine.
    EXPECT_NO_THROW(decodeCellRecord(text, nullptr));
}

TEST(RecordCodecTest, WrongSchemaVersionIsRejectedWithVersionedError)
{
    CellKey key = sampleKey();
    std::string text = encodeCellRecord(key, sampleSummary());
    auto pos = text.find("\"schema\":1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 10, "\"schema\":9");
    try {
        decodeCellRecord(text, &key);
        FAIL() << "schema 9 record was accepted";
    } catch (const StoreFormatError &error) {
        EXPECT_NE(std::string(error.what()).find("schema"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("9"),
                  std::string::npos);
    }
}

TEST(RecordCodecTest, EveryTruncationIsRejectedNeverCrashes)
{
    CellKey key = sampleKey();
    std::string text = encodeCellRecord(key, sampleSummary());
    // Every proper prefix must decode to an error, not a summary and
    // not a crash. (Prefixes that end mid-line lack the trailer;
    // prefixes on line boundaries lack lines.)
    for (size_t len = 0; len < text.size(); ++len) {
        std::string prefix = text.substr(0, len);
        EXPECT_THROW(decodeCellRecord(prefix, &key), StoreFormatError)
            << "prefix of length " << len << " was accepted";
    }
}

TEST(RecordCodecTest, RandomCorruptionIsRejectedOrEquivalent)
{
    CellKey key = sampleKey();
    std::string text = encodeCellRecord(key, sampleSummary());
    auto reference = decodeCellRecord(text, &key);
    Rng rng(0xf022);
    for (int round = 0; round < 2000; ++round) {
        std::string corrupt = text;
        size_t pos = rng.below(corrupt.size());
        char replacement =
            static_cast<char>(' ' + rng.below(95)); // printable ASCII
        if (replacement == corrupt[pos])
            continue; // not a corruption
        corrupt[pos] = replacement;
        try {
            decodeCellRecord(corrupt, &key);
            // The trailer checksum must catch every byte substitution
            // -- even ones inside string payloads that would parse as
            // valid JSON with silently different contents.
            ADD_FAILURE() << "corruption at pos " << pos << " ('"
                          << replacement << "') was accepted";
        } catch (const StoreFormatError &) {
            // rejected cleanly: the desired outcome
        } catch (const JsonError &) {
            FAIL() << "JsonError escaped the codec at pos " << pos;
        }
    }
    // The pristine text still decodes, of course.
    expectSummariesIdentical(reference, decodeCellRecord(text, &key));
}

TEST(RecordCodecTest, GarbageInputsAreRejected)
{
    CellKey key = sampleKey();
    for (const char *text :
         {"", "\n", "not json\n", "{}\n{}\n{}\n", "[1,2,3]\n",
          "{\"schema\":1}\n{\"schema\":1}\n{\"schema\":1}\n",
          "{\"schema\":true,\"kind\":\"cell\"}\na\nb\n"})
        EXPECT_THROW(decodeCellRecord(text, &key), StoreFormatError)
            << "accepted: " << text;
}

// ---- shard merge ----------------------------------------------------------

TEST(RecordCodecTest, MergeShardSummariesRequiresExactTiling)
{
    CellKey key = sampleKey(10);

    auto shard = [&](unsigned lo, unsigned hi) {
        ShardRecord record;
        record.key = key;
        record.lo = lo;
        record.hi = hi;
        record.summary.trials = hi - lo;
        record.summary.completed = hi - lo;
        for (unsigned i = lo; i < hi; ++i) {
            workloads::FidelityScore score;
            score.value = i; // trial-identifying
            record.summary.fidelities.push_back(score);
        }
        record.summary.totalInstructions = uint64_t{hi} - lo;
        return record;
    };

    // Out-of-order input merges fine and keeps trial order.
    auto merged = mergeShardSummaries(
        key, {shard(7, 10), shard(0, 4), shard(4, 7)});
    EXPECT_EQ(merged.trials, 10u);
    EXPECT_EQ(merged.completed, 10u);
    ASSERT_EQ(merged.fidelities.size(), 10u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(merged.fidelities[i].value, double(i));

    EXPECT_THROW(mergeShardSummaries(key, {shard(0, 4)}),
                 StoreFormatError); // gap at the tail
    EXPECT_THROW(mergeShardSummaries(key, {shard(0, 4), shard(5, 10)}),
                 StoreFormatError); // gap in the middle
    EXPECT_THROW(mergeShardSummaries(key, {shard(0, 6), shard(4, 10)}),
                 StoreFormatError); // overlap
    EXPECT_THROW(mergeShardSummaries(key, {}), StoreFormatError);
}

// ---- on-disk store --------------------------------------------------------

class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = std::filesystem::temp_directory_path() /
                ("etc_store_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        std::filesystem::remove_all(root_);
    }

    void TearDown() override { std::filesystem::remove_all(root_); }

    std::filesystem::path root_;
};

TEST_F(ResultStoreTest, CellLifecycle)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey();
    EXPECT_FALSE(cache.hasCell(key));
    EXPECT_FALSE(cache.loadCell(key).has_value());

    auto summary = sampleSummary();
    cache.storeCell(key, summary);
    EXPECT_TRUE(cache.hasCell(key));
    auto loaded = cache.loadCell(key);
    ASSERT_TRUE(loaded.has_value());
    expectSummariesIdentical(summary, *loaded);

    // A second store instance sees the same record (persistence).
    ResultStore other(root_.string());
    ASSERT_TRUE(other.loadCell(key).has_value());
    EXPECT_EQ(other.stats().cellHits, 1u);
}

TEST_F(ResultStoreTest, ShardLifecycle)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey(20);
    EXPECT_TRUE(cache.loadShards(key).empty());
    EXPECT_FALSE(cache.hasShard(key, 0, 10));

    auto summary = sampleSummary();
    summary.trials = 10;
    summary.completed = 7;
    summary.crashed = 2;
    summary.timedOut = 1;
    summary.fidelities.resize(7);
    cache.storeShard(key, 10, 20, summary);
    cache.storeShard(key, 0, 10, summary);
    EXPECT_TRUE(cache.hasShard(key, 0, 10));

    auto shards = cache.loadShards(key);
    ASSERT_EQ(shards.size(), 2u);
    EXPECT_EQ(shards[0].lo, 0u); // sorted by range
    EXPECT_EQ(shards[1].lo, 10u);

    cache.dropShards(key);
    EXPECT_TRUE(cache.loadShards(key).empty());
}

TEST_F(ResultStoreTest, CorruptCellIsAMissNotACrash)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey();
    cache.storeCell(key, sampleSummary());

    // Truncate the record mid-file.
    auto path = root_ / "cells" / (key.fingerprint() + ".jsonl");
    auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);

    EXPECT_FALSE(cache.loadCell(key).has_value());
    EXPECT_EQ(cache.stats().cellMisses, 1u);
}

TEST_F(ResultStoreTest, ForeignKeyInCellFileIsRejected)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey();
    CellKey other = sampleKey();
    other.errors += 1;

    // Plant another cell's (valid) record at this key's address, as a
    // fingerprint collision / copy-paste accident would.
    auto dir = root_ / "cells";
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / (key.fingerprint() + ".jsonl"),
                      std::ios::binary);
    auto summary = sampleSummary();
    summary.errors = other.errors;
    out << encodeCellRecord(other, summary);
    out.close();

    EXPECT_FALSE(cache.loadCell(key).has_value());
}

TEST_F(ResultStoreTest, CorruptShardIsSkippedOthersSurvive)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey(20);
    auto summary = sampleSummary();
    summary.trials = 10;
    summary.completed = 10;
    summary.crashed = 0;
    summary.timedOut = 0;
    summary.fidelities.resize(10);
    cache.storeShard(key, 0, 10, summary);
    cache.storeShard(key, 10, 20, summary);

    auto path =
        root_ / "shards" / key.fingerprint() / "0-10.jsonl";
    ASSERT_TRUE(std::filesystem::exists(path));
    std::ofstream(path, std::ios::binary) << "junk";

    auto shards = cache.loadShards(key);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].lo, 10u);
}

TEST_F(ResultStoreTest, LoadCellByFingerprintReturnsKeyAndSummary)
{
    ResultStore cache(root_.string());
    CellKey key = sampleKey();
    auto summary = sampleSummary();
    cache.storeCell(key, summary);

    auto record = cache.loadCellByFingerprint(key.fingerprint());
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->key.canonical(), key.canonical());
    expectSummariesIdentical(record->summary, summary);

    EXPECT_FALSE(
        cache.loadCellByFingerprint("0000000000000000").has_value());
}

// The store's concurrent-writer contract: two writers racing on the
// same cell -- modeling two processes, so each thread gets its own
// ResultStore instance over the shared root -- stage into unique tmp
// files and atomically rename into place, and because a cell is a
// pure function of its key they write identical bytes. A concurrent
// reader must therefore never see a torn or partial record: every
// load either misses (before the first rename lands) or decodes to
// the one true summary.
TEST_F(ResultStoreTest, RacingWritersResolveToOneIdenticalRecord)
{
    CellKey key = sampleKey();
    auto summary = sampleSummary();

    constexpr int WRITES_PER_WRITER = 60;
    std::atomic<bool> go{false};
    std::atomic<int> writersRunning{2};
    auto writer = [&] {
        ResultStore cache(root_.string());
        while (!go.load())
            std::this_thread::yield();
        for (int i = 0; i < WRITES_PER_WRITER; ++i)
            cache.storeCell(key, summary);
        --writersRunning;
    };

    std::atomic<bool> sawTornRecord{false};
    auto reader = [&] {
        ResultStore cache(root_.string());
        while (!go.load())
            std::this_thread::yield();
        // Keep reading until both writers finish (not a fixed probe
        // count: on a loaded machine the reader could spin through
        // any budget before the first rename lands). Before the
        // first successful load a miss is legitimate; after one, the
        // path permanently holds a complete record (rename replaces
        // it atomically), so any later miss or mismatching decode
        // means a torn record was visible.
        bool seen = false;
        while (writersRunning.load() > 0) {
            auto loaded = cache.loadCell(key);
            if (!loaded) {
                if (seen)
                    sawTornRecord = true;
                std::this_thread::yield();
                continue;
            }
            seen = true;
            if (loaded->trials != summary.trials ||
                loaded->fidelities.size() !=
                    summary.fidelities.size())
                sawTornRecord = true;
        }
    };

    std::thread writerA(writer), writerB(writer), readerThread(reader);
    go = true;
    writerA.join();
    writerB.join();
    readerThread.join();

    EXPECT_FALSE(sawTornRecord.load());

    ResultStore cache(root_.string());
    auto survivor = cache.loadCell(key);
    ASSERT_TRUE(survivor.has_value());
    expectSummariesIdentical(*survivor, summary);
    // Nothing left staged: every tmp file was renamed into place.
    size_t staged = 0;
    for ([[maybe_unused]] const auto &entry :
         std::filesystem::directory_iterator(root_ / "tmp"))
        ++staged;
    EXPECT_EQ(staged, 0u);
}

// ---- json primitives ------------------------------------------------------

TEST(JsonTest, ParsesTheCodecSubset)
{
    auto value = parseJson(
        "{\"a\":1,\"b\":\"x\\n\\\"y\",\"c\":true,\"d\":[1,2],"
        "\"e\":{\"f\":18446744073709551615}}");
    EXPECT_EQ(value.at("a").asU64(), 1u);
    EXPECT_EQ(value.at("b").asString(), "x\n\"y");
    EXPECT_TRUE(value.at("c").asBool());
    EXPECT_EQ(value.at("d").elements.size(), 2u);
    EXPECT_EQ(value.at("e").at("f").asU64(), ~0ull);
}

TEST(JsonTest, RejectsMalformedInput)
{
    for (const char *text :
         {"{", "}", "{\"a\"}", "{\"a\":}", "{\"a\":1,}", "tru",
          "\"unterminated", "{\"a\":1}x", "01x", "{\"a\":--1}",
          "{\"a\":1e}", "\"bad\\escape\"", "{\"a\":18446744073709551616}"})
        EXPECT_THROW(
            {
                auto v = parseJson(text);
                // force evaluation for the number-overflow case
                if (v.isObject())
                    v.at("a").asU64();
            },
            JsonError)
            << "accepted: " << text;
}

TEST(JsonTest, QuoteRoundTripsThroughParse)
{
    std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    auto value = parseJson(jsonQuote(nasty));
    EXPECT_EQ(value.asString(), nasty);
}

} // namespace
