/**
 * @file
 * Unit tests for the support layer: RNG, bit utilities, tables,
 * charts, logging.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bits.hh"
#include "support/chart.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace {

using namespace etc;

// ---- Rng --------------------------------------------------------------

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next64() == b.next64())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                           0xffffffffull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(RngTest, BelowZeroPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit with 500 draws
}

TEST(RngTest, RangeEmptyPanics)
{
    Rng rng(9);
    EXPECT_THROW(rng.range(5, 4), PanicError);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(RngTest, SampleDistinctProperties)
{
    Rng rng(13);
    for (uint64_t n : {1ull, 5ull, 100ull, 10000ull}) {
        for (uint64_t k : {0ull, 1ull, 3ull, 50ull}) {
            auto sample = rng.sampleDistinct(n, k);
            EXPECT_EQ(sample.size(), std::min(n, k));
            std::set<uint64_t> unique(sample.begin(), sample.end());
            EXPECT_EQ(unique.size(), sample.size()) << "duplicates";
            EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
            for (uint64_t v : sample)
                EXPECT_LT(v, n);
        }
    }
}

TEST(RngTest, SampleDistinctAllWhenKExceedsN)
{
    Rng rng(17);
    auto sample = rng.sampleDistinct(5, 50);
    ASSERT_EQ(sample.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleDistinctEmptyUniverse)
{
    Rng rng(19);
    EXPECT_TRUE(rng.sampleDistinct(0, 10).empty());
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.split();
    // The child must not replay the parent's stream.
    Rng parentCopy(23);
    parentCopy.split();
    EXPECT_EQ(parentCopy.next64(), parent.next64());
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child.next64() == parent.next64())
            ++same;
    EXPECT_LT(same, 2);
}

// ---- bit utilities ------------------------------------------------------

class FlipBitTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FlipBitTest, FlipIsInvolution)
{
    unsigned bit = GetParam();
    uint32_t value = 0xdeadbeef;
    uint32_t flipped = flipBit(value, bit);
    EXPECT_NE(flipped, value);
    EXPECT_EQ(flipBit(flipped, bit), value);
    EXPECT_EQ(flipped ^ value, uint32_t{1} << bit);
}

INSTANTIATE_TEST_SUITE_P(AllBits, FlipBitTest,
                         ::testing::Range(0u, 32u));

TEST(BitsTest, FlipBitOutOfRangePanics)
{
    EXPECT_THROW(flipBit(0, 32), PanicError);
}

TEST(BitsTest, BitsFieldExtract)
{
    EXPECT_EQ(bitsField(0xabcd1234, 0, 4), 0x4u);
    EXPECT_EQ(bitsField(0xabcd1234, 8, 8), 0x12u);
    EXPECT_EQ(bitsField(0xabcd1234, 28, 4), 0xau);
    EXPECT_EQ(bitsField(0xffffffff, 0, 32), 0xffffffffu);
}

TEST(BitsTest, InsertFieldRoundTrip)
{
    uint32_t word = 0;
    word = insertField(word, 4, 8, 0x5a);
    EXPECT_EQ(bitsField(word, 4, 8), 0x5au);
    word = insertField(word, 4, 8, 0x01);
    EXPECT_EQ(bitsField(word, 4, 8), 0x01u);
}

TEST(BitsTest, InsertFieldOverflowPanics)
{
    EXPECT_THROW(insertField(0, 0, 4, 0x10), PanicError);
}

TEST(BitsTest, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffffffff, 32), -1);
    EXPECT_EQ(signExtend(0x1, 1), -1);
    EXPECT_EQ(signExtend(0x0, 1), 0);
}

// ---- tables -------------------------------------------------------------

TEST(TableTest, AlignsColumns)
{
    Table t({"Name", "Value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.columnCount(), 2u);
}

TEST(TableTest, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TableTest, EmptyHeaderPanics)
{
    EXPECT_THROW(Table({}), PanicError);
}

TEST(TableTest, CsvQuotesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote\"inside", "line\nbreak"});
    std::ostringstream oss;
    t.printCsv(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatPercent(0.125, 1), "12.5%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

// ---- chart ---------------------------------------------------------------

TEST(ChartTest, RendersSeriesAndThreshold)
{
    AsciiChart chart("Demo", "x", "y", 32, 10);
    Series s;
    s.name = "line";
    s.marker = '*';
    s.xs = {0, 1, 2, 3};
    s.ys = {0, 1, 4, 9};
    chart.addSeries(s);
    chart.setThreshold(5.0, "limit");
    std::ostringstream oss;
    chart.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("line"), std::string::npos);
    EXPECT_NE(out.find("limit"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(ChartTest, EmptyChartSaysNoData)
{
    AsciiChart chart("Empty", "x", "y");
    std::ostringstream oss;
    chart.print(oss);
    EXPECT_NE(oss.str().find("(no data)"), std::string::npos);
}

TEST(ChartTest, MismatchedSeriesPanics)
{
    AsciiChart chart("Bad", "x", "y");
    Series s;
    s.xs = {1, 2};
    s.ys = {1};
    EXPECT_THROW(chart.addSeries(s), PanicError);
}

// ---- logging ---------------------------------------------------------------

TEST(LoggingTest, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
    try {
        panic("value=", 7);
    } catch (const PanicError &err) {
        EXPECT_NE(std::string(err.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(LoggingTest, QuietToggle)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

} // namespace
