/**
 * @file
 * Loopback integration tests of the campaign service: a real
 * HttpServer on an ephemeral 127.0.0.1 port, a started Scheduler over
 * a temp result store, and the blocking Client driving the full API
 * -- submit -> poll -> fetch, warm-cache submissions executing zero
 * trials, duplicate submissions attaching to the live job, >= 8
 * concurrent clients, malformed requests answered with 4xx JSON, and
 * the GET /v1/figures/<name> byte-identity contract with `etc_lab
 * report`'s render path.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/experiments.hh"
#include "core/query.hh"
#include "core/vulnerability_report.hh"
#include "fault/policy.hh"
#include "service/client.hh"
#include "service/http_server.hh"
#include "service/scheduler.hh"
#include "service/service.hh"
#include "store/json.hh"
#include "store/result_store.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"

namespace {

using namespace etc;
using service::CampaignService;
using service::Client;
using service::HttpServer;
using service::Scheduler;
using service::SchedulerConfig;

// The smallest registry experiment: GSM at test scale, 2 protected
// cells of 8 trials each.
constexpr const char *EXPERIMENT = "smoke-gsm";

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearStopRequest(); // never inherit a stop from another test
        root_ = std::filesystem::temp_directory_path() /
                ("etc_service_test_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        std::filesystem::remove_all(root_);

        SchedulerConfig config;
        config.cacheDir = root_.string();
        config.workers = 2;
        config.threads = 2;
        config.chunks = 2;
        // Workers start per test (startWorkers()): tests that need a
        // deterministic "job still queued" window submit first.
        scheduler_ = std::make_unique<Scheduler>(config);
        serviceFacade_ =
            std::make_unique<CampaignService>(*scheduler_);
        server_ = std::make_unique<HttpServer>(
            0, [this](const service::HttpRequest &request) {
                return serviceFacade_->handle(request);
            });
        serverThread_ = std::thread([this] { server_->run(50); });
    }

    void
    TearDown() override
    {
        server_->stop();
        serverThread_.join();
        scheduler_->stop();
        server_.reset();
        serviceFacade_.reset();
        scheduler_.reset();
        std::filesystem::remove_all(root_);
    }

    void
    startWorkers()
    {
        scheduler_->start();
    }

    Client
    client()
    {
        return Client("127.0.0.1", server_->port());
    }

    /** POST a job; @return the response. */
    Client::Response
    submit(const std::string &body)
    {
        return client().post("/v1/jobs", body);
    }

    /** Poll a job until it leaves queued/running; @return last body. */
    std::string
    awaitJob(const std::string &jobId)
    {
        Client poller = client();
        for (int i = 0; i < 3000; ++i) {
            auto response = poller.get("/v1/jobs/" + jobId);
            EXPECT_TRUE(response.ok()) << response.body;
            auto state =
                store::parseJson(response.body).at("state").asString();
            if (state == "done" || state == "failed")
                return response.body;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ADD_FAILURE() << "job " << jobId << " never drained";
        return "";
    }

    std::filesystem::path root_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<CampaignService> serviceFacade_;
    std::unique_ptr<HttpServer> server_;
    std::thread serverThread_;
};

TEST_F(ServiceTest, HealthzAndExperimentRegistry)
{
    auto health = client().get("/v1/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.contentType, "application/json");
    auto parsed = store::parseJson(health.body);
    EXPECT_EQ(parsed.at("status").asString(), "ok");
    EXPECT_EQ(parsed.at("workers").asU64(), 2u);

    auto registry = client().get("/v1/experiments");
    EXPECT_EQ(registry.status, 200);
    auto experiments = store::parseJson(registry.body);
    bool found = false;
    for (const auto &entry :
         experiments.at("experiments").elements) {
        if (entry.at("name").asString() != EXPERIMENT)
            continue;
        found = true;
        EXPECT_EQ(entry.at("workload").asString(), "gsm");
        EXPECT_EQ(entry.at("cells").asU64(), 2u);
        EXPECT_EQ(entry.at("defaultTrials").asU64(), 8u);
    }
    EXPECT_TRUE(found) << registry.body;
}

TEST_F(ServiceTest, SubmitPollFetchAndFigureByteIdentity)
{
    startWorkers();
    auto submitted =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    auto outcome = store::parseJson(submitted.body);
    EXPECT_FALSE(outcome.at("attached").asBool());
    EXPECT_EQ(outcome.at("cells").asU64(), 2u);
    std::string jobId = outcome.at("job").asString();

    auto final = store::parseJson(awaitJob(jobId));
    EXPECT_EQ(final.at("state").asString(), "done");
    EXPECT_EQ(final.at("cellsDone").asU64(), 2u);
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 16u);

    // Every cell's stored record is fetchable by its fingerprint.
    for (const auto &cell : final.at("cells").elements) {
        EXPECT_EQ(cell.at("state").asString(), "done");
        EXPECT_FALSE(cell.at("cached").asBool());
        auto record = client().get("/v1/cells/" +
                                   cell.at("key").asString());
        ASSERT_EQ(record.status, 200) << record.body;
        auto parsed = store::parseJson(record.body);
        EXPECT_EQ(parsed.at("key").at("workload").asString(), "gsm");
        EXPECT_EQ(parsed.at("summary").at("trials").asU64(), 8u);
    }

    // The figure over HTTP is byte-identical to the `etc_lab report`
    // render path pointed at the same cache directory.
    auto figure = client().get(std::string("/v1/figures/") +
                               EXPERIMENT);
    ASSERT_EQ(figure.status, 200) << figure.body;
    EXPECT_EQ(figure.contentType, "text/plain; charset=utf-8");

    const bench::Experiment *exp = bench::findExperiment(EXPERIMENT);
    ASSERT_NE(exp, nullptr);
    bench::BenchOptions opts;
    opts.cacheDir = root_.string();
    store::ResultStore cache(opts.cacheDir);
    auto sweep = bench::loadExperimentFromStore(*exp, opts, cache);
    ASSERT_TRUE(sweep.complete());
    std::ostringstream offline;
    bench::renderExperiment(offline, *exp, sweep.points);
    EXPECT_EQ(figure.body, offline.str());
}

TEST_F(ServiceTest, AnalysisEndpointMatchesTheCliRender)
{
    // GET /v1/analysis/<workload> serves byte-for-byte what
    // `etc_lab analyze --workload <w>` prints: both sides call
    // renderVulnerabilityReport() on the same build.
    auto workload = workloads::createWorkload("gsm");
    std::string expected = core::renderVulnerabilityReport(
        core::buildVulnerabilityReport(*workload));

    auto response = client().get("/v1/analysis/gsm");
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, expected);

    // The report is memoized: a second fetch returns the same bytes.
    auto again = client().get("/v1/analysis/gsm");
    EXPECT_EQ(again.body, expected);

    // Unknown workloads 404; non-GET methods are rejected.
    EXPECT_EQ(client().get("/v1/analysis/nonesuch").status, 404);
    EXPECT_EQ(client().post("/v1/analysis/gsm", "{}").status, 405);
}

TEST_F(ServiceTest, PolicyRegistryEndpointMirrorsTheCliRows)
{
    auto response = client().get("/v1/policies");
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.contentType, "application/json");
    auto parsed = store::parseJson(response.body);
    const auto &rows = parsed.at("policies").elements;

    // One shared code path: the endpoint serves exactly the
    // describeInjectionPolicies() rows `etc_lab policies` prints.
    auto expected = fault::describeInjectionPolicies();
    ASSERT_EQ(rows.size(), expected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].at("name").asString(), expected[i].name);
        EXPECT_EQ(rows[i].at("description").asString(),
                  expected[i].description);
        EXPECT_EQ(rows[i].at("legacy").asBool(), expected[i].legacy);
        EXPECT_EQ(rows[i].at("scope").asString(), expected[i].scope);
        EXPECT_EQ(rows[i].at("resultKinds").asString(),
                  expected[i].resultKinds);
        EXPECT_EQ(rows[i].at("bitModel").asString(),
                  expected[i].bitModel);
        EXPECT_EQ(rows[i].at("hash").asString(), expected[i].hash);
    }
}

TEST_F(ServiceTest, NonLegacyPolicyCellRunsOverHttp)
{
    startWorkers();
    auto submitted = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT +
        "\",\"errors\":1,\"policy\":\"control-only\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    auto outcome = store::parseJson(submitted.body);
    EXPECT_EQ(outcome.at("cells").asU64(), 1u);

    auto final = store::parseJson(
        awaitJob(outcome.at("job").asString()));
    EXPECT_EQ(final.at("state").asString(), "done");
    const auto &cell = final.at("cells").elements.at(0);
    EXPECT_EQ(cell.at("policy").asString(), "control-only");
    EXPECT_EQ(cell.at("trialsExecuted").asU64(), 8u);

    // The stored record is fetchable and self-describes its policy,
    // descriptor hash included.
    auto record =
        client().get("/v1/cells/" + cell.at("key").asString());
    ASSERT_EQ(record.status, 200) << record.body;
    auto parsed = store::parseJson(record.body);
    EXPECT_EQ(parsed.at("key").at("policy").asString(),
              "control-only");
    EXPECT_EQ(parsed.at("key").at("policyHash").asString(),
              fault::findInjectionPolicy("control-only")
                  ->descriptorHashHex());
    EXPECT_EQ(parsed.at("summary").at("trials").asU64(), 8u);
}

TEST_F(ServiceTest, WarmCacheSubmissionExecutesZeroTrials)
{
    startWorkers();
    auto first =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(first.status, 202);
    std::string firstJob =
        store::parseJson(first.body).at("job").asString();
    awaitJob(firstJob);

    // The store is warm and the first job is no longer active, so
    // this is a *new* job whose cells all complete as cache hits.
    auto second =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(second.status, 202);
    auto outcome = store::parseJson(second.body);
    std::string secondJob = outcome.at("job").asString();
    EXPECT_NE(secondJob, firstJob);

    auto final = store::parseJson(awaitJob(secondJob));
    EXPECT_EQ(final.at("state").asString(), "done");
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 0u);
    for (const auto &cell : final.at("cells").elements) {
        EXPECT_TRUE(cell.at("cached").asBool());
        EXPECT_EQ(cell.at("trialsExecuted").asU64(), 0u);
    }
}

TEST_F(ServiceTest, DuplicateSubmissionAttachesToTheLiveJob)
{
    // Workers are not running yet, so the first job is pinned in
    // state "queued" -- the duplicate submission window is
    // deterministic, not a race against a fast campaign.
    std::string body =
        std::string("{\"experiment\":\"") + EXPERIMENT + "\"}";
    auto first = submit(body);
    ASSERT_EQ(first.status, 202);
    std::string firstJob =
        store::parseJson(first.body).at("job").asString();

    // Submitted again while the first job is still queued/running:
    // idempotent on CellKey, so it attaches instead of duplicating.
    auto second = submit(body);
    ASSERT_EQ(second.status, 202);
    auto outcome = store::parseJson(second.body);
    EXPECT_TRUE(outcome.at("attached").asBool());
    EXPECT_EQ(outcome.at("job").asString(), firstJob);

    startWorkers();
    auto final = store::parseJson(awaitJob(firstJob));
    EXPECT_EQ(final.at("state").asString(), "done");
    // Attached, not duplicated: the sweep ran once.
    EXPECT_EQ(final.at("trialsExecuted").asU64(), 16u);
}

TEST_F(ServiceTest, SingleCellSubmissionAndFigureConflict)
{
    startWorkers();
    auto submitted = submit(
        std::string("{\"experiment\":\"") + EXPERIMENT +
        "\",\"errors\":1,\"mode\":\"protected\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    auto outcome = store::parseJson(submitted.body);
    EXPECT_EQ(outcome.at("cells").asU64(), 1u);
    auto final = store::parseJson(
        awaitJob(outcome.at("job").asString()));
    EXPECT_EQ(final.at("state").asString(), "done");

    // One of the sweep's two cells is still missing, so the figure
    // reports a conflict naming it.
    auto figure = client().get(std::string("/v1/figures/") +
                               EXPERIMENT);
    EXPECT_EQ(figure.status, 409);
    auto conflict = store::parseJson(figure.body);
    EXPECT_EQ(conflict.at("missingCells").elements.size(), 1u);

    auto sweep =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(sweep.status, 202);
    awaitJob(store::parseJson(sweep.body).at("job").asString());
    EXPECT_EQ(client()
                  .get(std::string("/v1/figures/") + EXPERIMENT)
                  .status,
              200);
}

TEST_F(ServiceTest, MalformedRequestsReturn4xxJsonErrors)
{
    auto expectJsonError = [](const Client::Response &response,
                              int status) {
        EXPECT_EQ(response.status, status) << response.body;
        EXPECT_EQ(response.contentType, "application/json");
        auto parsed = store::parseJson(response.body);
        EXPECT_FALSE(parsed.at("error").asString().empty());
        EXPECT_EQ(parsed.at("status").asU64(),
                  static_cast<uint64_t>(status));
    };

    expectJsonError(submit("this is not json"), 400);
    expectJsonError(submit("[1,2,3]"), 400);
    expectJsonError(submit("{}"), 400);
    expectJsonError(submit("{\"experiment\":\"no-such-sweep\"}"), 404);
    expectJsonError(submit(std::string("{\"experiment\":\"") +
                           EXPERIMENT + "\",\"trials\":0}"),
                    400);
    expectJsonError(submit(std::string("{\"experiment\":\"") +
                           EXPERIMENT + "\",\"mode\":\"protected\"}"),
                    400);
    expectJsonError(submit(std::string("{\"experiment\":\"") +
                           EXPERIMENT +
                           "\",\"errors\":1,\"mode\":\"sideways\"}"),
                    400);
    expectJsonError(client().get("/v1/jobs/j999"), 404);
    expectJsonError(client().get("/v1/cells/not-a-fingerprint"), 400);
    expectJsonError(client().get("/v1/cells/0123456789abcdef"), 404);
    expectJsonError(client().get("/v1/cells/../../etc/passwd"), 400);
    expectJsonError(client().get("/v1/figures/no-such-sweep"), 404);
    expectJsonError(client().get("/v1/nope"), 404);
    expectJsonError(client().get("/v1/jobs"), 405);
    expectJsonError(client().post("/v1/healthz", "{}"), 405);
}

// A raw malformed request line (not even HTTP) gets a 400, not a hang
// or a dropped connection without an answer.
TEST_F(ServiceTest, GarbageRequestLineGetsA400)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(server_->port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&address),
                        sizeof(address)),
              0);
    const char garbage[] = "EXTERMINATE\r\n\r\n";
    ASSERT_EQ(::write(fd, garbage, sizeof(garbage) - 1),
              static_cast<ssize_t>(sizeof(garbage) - 1));
    std::string reply;
    char buffer[4096];
    ssize_t n;
    while ((n = ::read(fd, buffer, sizeof(buffer))) > 0)
        reply.append(buffer, static_cast<size_t>(n));
    ::close(fd);
    EXPECT_EQ(reply.rfind("HTTP/1.1 400 ", 0), 0u) << reply;
}

// The acceptance bar: >= 8 concurrent clients served without error,
// every figure fetch returning identical bytes.
TEST_F(ServiceTest, EightConcurrentClientsAreServedWithoutError)
{
    startWorkers();
    constexpr int CLIENTS = 8;
    std::atomic<int> failures{0};
    std::vector<std::string> figures(CLIENTS);
    std::vector<std::thread> threads;
    threads.reserve(CLIENTS);
    for (int i = 0; i < CLIENTS; ++i) {
        threads.emplace_back([&, i] {
            try {
                Client mine("127.0.0.1", server_->port());
                if (!mine.get("/v1/healthz").ok() ||
                    !mine.get("/v1/experiments").ok()) {
                    ++failures;
                    return;
                }
                auto submitted = mine.post(
                    "/v1/jobs", std::string("{\"experiment\":\"") +
                                    EXPERIMENT + "\"}");
                if (submitted.status != 202) {
                    ++failures;
                    return;
                }
                std::string jobId = store::parseJson(submitted.body)
                                        .at("job")
                                        .asString();
                for (int poll = 0; poll < 3000; ++poll) {
                    auto status = mine.get("/v1/jobs/" + jobId);
                    if (!status.ok()) {
                        ++failures;
                        return;
                    }
                    auto state = store::parseJson(status.body)
                                     .at("state")
                                     .asString();
                    if (state == "done")
                        break;
                    if (state == "failed") {
                        ++failures;
                        return;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                }
                auto figure = mine.get(
                    std::string("/v1/figures/") + EXPERIMENT);
                if (figure.status != 200) {
                    ++failures;
                    return;
                }
                figures[static_cast<size_t>(i)] = figure.body;
            } catch (const std::exception &) {
                ++failures;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(failures.load(), 0);
    for (int i = 1; i < CLIENTS; ++i)
        EXPECT_EQ(figures[static_cast<size_t>(i)], figures[0])
            << "client " << i << " saw different figure bytes";
}

TEST_F(ServiceTest, QueryEndpointMatchesRunQueryBytes)
{
    startWorkers();
    auto submitted =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    awaitJob(store::parseJson(submitted.body).at("job").asString());

    // GET /v1/query serves exactly the bytes core::runQuery renders
    // over the same cache (the contract `etc_lab query --json` rides).
    for (auto agg : {core::QueryAgg::Cells, core::QueryAgg::Coverage,
                     core::QueryAgg::Curve, core::QueryAgg::Cdf}) {
        auto response = client().get(
            std::string("/v1/query?workload=gsm&agg=") +
            core::queryAggName(agg));
        ASSERT_EQ(response.status, 200) << response.body;
        EXPECT_EQ(response.contentType, "application/json");

        core::QueryOptions options;
        options.filter.workload = "gsm";
        options.agg = agg;
        auto offline = core::runQuery(root_.string(), options);
        EXPECT_EQ(response.body, offline.json)
            << core::queryAggName(agg);
    }

    // The curve rollup covers both submitted cells without loading
    // more than their two records.
    auto curve = store::parseJson(
        client().get("/v1/query?workload=gsm&agg=curve").body);
    EXPECT_EQ(curve.at("cellsMatched").asU64(), 2u);
    EXPECT_EQ(curve.at("recordsLoaded").asU64(), 2u);
    EXPECT_EQ(curve.at("trialsCovered").asU64(), 16u);

    // Repeatable filter params narrow the match set.
    auto narrowed = store::parseJson(
        client().get("/v1/query?workload=gsm&agg=cells&errors=1").body);
    EXPECT_EQ(narrowed.at("cellsMatched").asU64(), 1u);

    // Invalid requests are 400 JSON errors, not 500s.
    for (const char *bad :
         {"/v1/query?agg=bogus", "/v1/query?agg=curve&errors=x",
          "/v1/query?agg=avf&workload=no-such-workload"}) {
        auto response = client().get(bad);
        EXPECT_EQ(response.status, 400) << bad;
        EXPECT_NE(response.body.find("\"error\""), std::string::npos)
            << bad;
    }
}

TEST_F(ServiceTest, IndexEndpointAndHealthReflectTheArchive)
{
    startWorkers();
    auto submitted =
        submit(std::string("{\"experiment\":\"") + EXPERIMENT + "\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    awaitJob(store::parseJson(submitted.body).at("job").asString());

    auto index = client().get("/v1/index");
    ASSERT_EQ(index.status, 200) << index.body;
    auto parsed = store::parseJson(index.body);
    EXPECT_EQ(parsed.at("health").at("cells").asU64(), 2u);
    EXPECT_EQ(parsed.at("health").at("journalCorrupt").asU64(), 0u);
    ASSERT_EQ(parsed.at("entries").elements.size(), 2u);
    for (const auto &entry : parsed.at("entries").elements) {
        EXPECT_EQ(entry.at("workload").asString(), "gsm");
        EXPECT_TRUE(entry.at("complete").asBool());
    }

    auto health = store::parseJson(client().get("/v1/healthz").body);
    EXPECT_EQ(health.at("indexCells").asU64(), 2u);
    EXPECT_EQ(health.at("indexJournalCorrupt").asU64(), 0u);

    // The experiment registry reports archive coverage via the index.
    auto registry =
        store::parseJson(client().get("/v1/experiments").body);
    for (const auto &entry : registry.at("experiments").elements) {
        uint64_t expected =
            entry.at("name").asString() == EXPERIMENT ? 2u : 0u;
        EXPECT_EQ(entry.at("cellsCached").asU64(), expected)
            << entry.at("name").asString();
    }
}

} // namespace
