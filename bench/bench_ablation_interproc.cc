/**
 * @file
 * Ablation C: interprocedural vs. intraprocedural CVar analysis.
 *
 * The paper "assumes inter-procedural analysis". Dropping the
 * call/return edges makes the analysis treat every call as an opaque
 * fallthrough, so values that feed control decisions in *other*
 * functions are wrongly tagged -- more taggable instructions, but
 * unsound protection (higher failure rates).
 */

#include <iostream>

#include "analysis/control_protection.hh"
#include "bench/common.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"
#include "support/logging.hh"

using namespace etc;
using fault::PROTECTED_POLICY;
using fault::UNPROTECTED_POLICY;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Ablation C: interprocedural analysis",
                  "Tagged fractions and protected failure rates with "
                  "and without crossing procedure boundaries");

    Table table({"Algorithm", "analysis", "static tagged",
                 "% dyn tagged", "% fail @20 errors"});
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        for (bool interprocedural : {true, false}) {
            core::StudyConfig config;
            opts.applyTo(config);
            config.trials = opts.trialsOr(25);
            config.protection.interprocedural = interprocedural;
            core::ErrorToleranceStudy study(*workload, config);
            inform("ablation-interproc: ", name,
                   " interprocedural=", interprocedural);
            auto cell = study.runCell(20, PROTECTED_POLICY);
            bench::emitCellJson(name, interprocedural
                                          ? "protected-interproc"
                                          : "protected-intraproc",
                                20, cell, study.config());
            table.addRow({
                name,
                interprocedural ? "interprocedural (paper)"
                                : "intraprocedural",
                std::to_string(study.protection().numTagged),
                formatPercent(study.profile().taggedFraction()),
                formatPercent(cell.failureRate()),
            });
        }
    }
    table.print(std::cout);
    std::cout << "\n(expected: intraprocedural tags at least as much "
                 "and fails at least as often)\n";
    return 0;
}
