/**
 * @file
 * Table 3 reproduction: dynamic instruction counts and the percentage
 * of dynamic instructions the static analysis identifies as not
 * leading to control (low-reliability, taggable).
 */

#include <iostream>

#include "analysis/control_protection.hh"
#include "bench/common.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"

using namespace etc;

namespace {

const std::vector<std::pair<const char *, const char *>> paperRows = {
    {"susan", "91.3%"},  {"mpeg", "50.3%"}, {"mcf", "8.9%"},
    {"blowfish", "62.4%"}, {"adpcm", "93.26%"}, {"gsm", "19.6%"},
    {"art", "70.8%"},
};

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv);
    bench::banner("Table 3",
                  "Dynamic instructions identified as low-reliability "
                  "(could run in an unreliable environment)");

    Table table({"Algorithm", "Instructions", "% low-reliability",
                 "paper", "static tagged/ALU", "branches", "memory ops"});
    for (const auto &[name, paperValue] : paperRows) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        analysis::ProtectionConfig config;
        config.eligibleFunctions = workload->eligibleFunctions();
        auto protection = analysis::computeControlProtection(
            workload->program(), config);

        sim::Simulator sim(workload->program());
        sim::Profiler profiler(protection.tagged);
        auto run = sim.run(0, &profiler);
        if (!run.completed()) {
            std::cerr << name << ": golden run failed\n";
            return 1;
        }
        const auto &profile = profiler.profile();
        table.addRow({
            name,
            std::to_string(profile.total),
            formatPercent(profile.taggedFraction()),
            paperValue,
            std::to_string(protection.numTagged) + "/" +
                std::to_string(protection.numAlu),
            std::to_string(profile.branches),
            std::to_string(profile.memoryOps),
        });
    }
    table.print(std::cout);
    std::cout << "\n(shape to check: susan/adpcm high, blowfish/art "
                 "middling, gsm low, mcf lowest)\n";
    return 0;
}
