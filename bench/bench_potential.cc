/**
 * @file
 * Section 5.3 reproduction ("Future Potential"): the cost of
 * selectively protecting only control-related execution, per
 * application and protection scheme. The paper's closing argument --
 * data-parallel apps can push ~90% of execution onto cheap hardware,
 * so "only moderate effort is necessary for an architecture to
 * protect these instructions through redundancy" -- rendered as
 * measured speedups.
 */

#include <iostream>

#include "analysis/control_protection.hh"
#include "bench/common.hh"
#include "core/potential.hh"
#include "sim/profiler.hh"
#include "sim/simulator.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv);
    bench::banner("Section 5.3: future potential",
                  "Selective protection cost vs. uniform protection, "
                  "per application and redundancy scheme");

    Table table({"Algorithm", "% low-reliability", "scheme",
                 "uniform cost", "selective cost", "speedup",
                 "budget saved"});
    for (const auto &name : workloads::workloadNames()) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        analysis::ProtectionConfig config;
        config.eligibleFunctions = workload->eligibleFunctions();
        auto protection = analysis::computeControlProtection(
            workload->program(), config);
        sim::Simulator sim(workload->program());
        sim::Profiler profiler(protection.tagged);
        if (!sim.run(0, &profiler).completed()) {
            std::cerr << name << ": golden run failed\n";
            return 1;
        }
        bool first = true;
        for (const auto &model : core::standardCostModels()) {
            auto estimate =
                core::estimatePotential(profiler.profile(), model);
            table.addRow({
                first ? name : "",
                first ? formatPercent(estimate.taggedFraction) : "",
                model.name,
                formatDouble(estimate.uniformCost, 1) + "x",
                formatDouble(estimate.selectiveCost) + "x",
                formatDouble(estimate.speedup()) + "x",
                formatPercent(estimate.savings()),
            });
            first = false;
        }
    }
    table.print(std::cout);
    std::cout << "\n(reading: susan/adpcm recover most of the TMR "
                 "budget; mcf, whose execution is control, recovers "
                 "almost nothing -- the paper's Section 5.3 point)\n";
    return 0;
}
