/**
 * @file
 * Figure 3 reproduction: MCF percentage of optimal schedules found and
 * percentage of failed executions vs. errors inserted. Paper shape:
 * most schedules stay correct at low error counts; incorrect ones are
 * visibly incomplete; failures grow with the error count.
 */

#include <iostream>
#include <limits>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/mcf.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 3",
                  "MCF: % optimal schedules found and % failed "
                  "executions vs. errors inserted");

    workloads::McfWorkload workload(
        workloads::McfWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    // Corrupted parent walks spin forever; a 4x budget detects them
    // without burning the full default timeout allowance.
    config.budgetFactor = 4.0;
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {0, 1, 2, 5, 10, 20, 50};
    sweep.trials = opts.trialsOr(25);
    sweep.runUnprotected = true;
    auto points = bench::runSweep(workload, study, sweep);

    // For MCF the fidelity metric plotted by the paper is the share of
    // runs that still find the optimal schedule.
    bench::printFigure(
        "Figure 3: MCF", "% optimal schedules", points,
        [](const core::CellSummary &cell) {
            return 100.0 * cell.acceptableRate();
        },
        std::numeric_limits<double>::quiet_NaN());
    return 0;
}
