#include "bench/experiments.hh"

#include <iostream>
#include <limits>

#include "store/result_store.hh"

namespace etc::bench {

namespace {

constexpr double NO_THRESHOLD =
    std::numeric_limits<double>::quiet_NaN();

} // namespace

const std::vector<Experiment> &
experiments()
{
    static const std::vector<Experiment> registry = {
        {
            "fig1",
            "Figure 1",
            "Susan: PSNR of pictures with error vs. errors "
            "inserted (threshold 10 dB)",
            "Figure 1: Susan",
            "PSNR (dB)",
            "susan",
            workloads::Scale::Bench,
            {100, 500, 920, 1100, 1550, 2300},
            25,
            {"protected", "unprotected"},
            0,
            FidelityMetric::Mean,
            10.0,
        },
        {
            "fig2",
            "Figure 2",
            "MPEG: % bad frames and % failed executions vs. "
            "errors inserted (threshold 10% bad frames)",
            "Figure 2: MPEG",
            "% bad frames",
            "mpeg",
            workloads::Scale::Bench,
            {25, 50, 100, 250, 500},
            25,
            {"protected", "unprotected"},
            0,
            FidelityMetric::MeanPercent,
            10.0,
        },
        {
            "fig3",
            "Figure 3",
            "MCF: % optimal schedules found and % failed "
            "executions vs. errors inserted",
            "Figure 3: MCF",
            "% optimal schedules",
            "mcf",
            workloads::Scale::Bench,
            {0, 1, 2, 5, 10, 20, 50},
            25,
            {"protected", "unprotected"},
            // Corrupted parent walks spin forever; a 4x budget
            // detects them without burning the full default timeout
            // allowance.
            4.0,
            FidelityMetric::AcceptablePct,
            NO_THRESHOLD,
        },
        {
            "fig4",
            "Figure 4",
            "Blowfish: % bytes correct and % failed executions "
            "vs. errors inserted",
            "Figure 4: Blowfish",
            "% bytes correct",
            "blowfish",
            workloads::Scale::Bench,
            {1, 5, 10, 20, 30, 40},
            20,
            {"protected", "unprotected"},
            0,
            FidelityMetric::MeanPercent,
            NO_THRESHOLD,
        },
        {
            "fig5",
            "Figure 5",
            "GSM: SNR vs. fault-free decode and % failed "
            "executions vs. errors inserted",
            "Figure 5: GSM",
            "SNR (dB) vs fault-free output",
            "gsm",
            workloads::Scale::Bench,
            {1, 5, 10, 20, 30, 40},
            25,
            {"protected", "unprotected"},
            0,
            FidelityMetric::Mean,
            NO_THRESHOLD,
        },
        {
            "fig6",
            "Figure 6",
            "ART: % images recognized and % failed executions "
            "vs. errors inserted",
            "Figure 6: ART",
            "% images recognized",
            "art",
            workloads::Scale::Bench,
            {0, 1, 2, 3, 4},
            40,
            {"protected", "unprotected"},
            0,
            FidelityMetric::AcceptablePct,
            NO_THRESHOLD,
        },
        // Not paper figures: minute-scale sweeps over the test-scale
        // inputs, sized for CI cache smoke tests and local sanity
        // checks of the store/orchestration machinery.
        {
            "smoke",
            "Smoke sweep",
            "ADPCM at test scale: tiny sweep for cache and "
            "orchestration validation (not a paper figure)",
            "Smoke: ADPCM (test scale)",
            "fidelity",
            "adpcm",
            workloads::Scale::Test,
            {1, 3, 5},
            12,
            {"protected", "unprotected"},
            0,
            FidelityMetric::Mean,
            NO_THRESHOLD,
        },
        {
            "smoke-gsm",
            "Smoke sweep (GSM)",
            "GSM at test scale: tiny sweep for cache and "
            "orchestration validation (not a paper figure)",
            "Smoke: GSM (test scale)",
            "SNR (dB) vs fault-free output",
            "gsm",
            workloads::Scale::Test,
            {1, 4},
            8,
            {"protected"},
            0,
            FidelityMetric::Mean,
            NO_THRESHOLD,
        },
        // The policy ablation the paper only implies: the same
        // workload swept under every built-in injection policy --
        // the legacy pair, the result-kind slices, and the harsher
        // bit-error models -- at test scale so the whole grid runs
        // in seconds.
        {
            "ablation_policies",
            "Ablation: injection policies",
            "ADPCM at test scale under every built-in injection "
            "policy: which results faults corrupt, and how",
            "Ablation: ADPCM across injection policies",
            "fraction bytes correct",
            "adpcm",
            workloads::Scale::Test,
            {1, 3},
            10,
            {"protected", "unprotected", "control-only", "data-only",
             "unprotected-regs", "protected-burst2",
             "unprotected-low16"},
            0,
            FidelityMetric::Mean,
            NO_THRESHOLD,
        },
    };
    return registry;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &exp : experiments())
        if (exp.name == name)
            return &exp;
    return nullptr;
}

std::string
experimentNames()
{
    std::string names;
    for (const auto &exp : experiments()) {
        if (!names.empty())
            names += ", ";
        names += exp.name;
    }
    return names;
}

double
fidelityOf(const Experiment &exp, const core::CellSummary &cell)
{
    switch (exp.metric) {
      case FidelityMetric::Mean: return cell.meanFidelity();
      case FidelityMetric::MeanPercent:
        return 100.0 * cell.meanFidelity();
      case FidelityMetric::AcceptablePct:
        return 100.0 * cell.acceptableRate();
    }
    return 0.0;
}

core::StudyConfig
makeStudyConfig(const Experiment &exp, const BenchOptions &opts)
{
    core::StudyConfig config;
    opts.applyTo(config);
    if (exp.budgetFactor > 0)
        config.budgetFactor = exp.budgetFactor;
    return config;
}

SweepConfig
makeSweepConfig(const Experiment &exp, const BenchOptions &opts)
{
    SweepConfig sweep;
    sweep.errorCounts = exp.errorCounts;
    sweep.trials = opts.trialsOr(exp.defaultTrials);
    sweep.policies = sweepPolicies(exp, opts);
    sweep.shardIndex = opts.shardIndex;
    sweep.shardCount = opts.shardCount;
    return sweep;
}

std::vector<std::string>
sweepPolicies(const Experiment &exp, const BenchOptions &opts)
{
    return opts.policies.empty() ? exp.policies : opts.policies;
}

std::vector<std::pair<unsigned, std::string>>
experimentCells(const Experiment &exp,
                const std::vector<std::string> &policies)
{
    std::vector<std::pair<unsigned, std::string>> cells;
    for (unsigned errors : exp.errorCounts)
        for (const auto &policy : policies)
            cells.emplace_back(errors, policy);
    return cells;
}

std::vector<std::pair<unsigned, std::string>>
experimentCells(const Experiment &exp)
{
    return experimentCells(exp, exp.policies);
}

std::vector<SweepPoint>
sweepPointsFrom(const Experiment &exp,
                const std::vector<std::string> &policies,
                const std::vector<core::CellSummary> &summaries)
{
    std::vector<SweepPoint> points;
    size_t next = 0;
    for (unsigned errors : exp.errorCounts) {
        SweepPoint point;
        point.errors = errors;
        for (size_t i = 0; i < policies.size(); ++i)
            point.cells.push_back(summaries.at(next++));
        points.push_back(std::move(point));
    }
    return points;
}

std::vector<store::CellKey>
experimentCellKeys(const Experiment &exp, const BenchOptions &opts)
{
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts);
    auto protection = core::computeStudyProtection(*workload, config);
    unsigned trials = opts.trialsOr(exp.defaultTrials);

    std::vector<store::CellKey> keys;
    for (auto [errors, policy] :
         experimentCells(exp, sweepPolicies(exp, opts)))
        keys.push_back(core::makeCellKey(*workload, protection, config,
                                         errors, policy, trials));
    return keys;
}

StoredSweep
loadExperimentFromStore(const Experiment &exp, const BenchOptions &opts,
                        store::ResultStore &cache)
{
    return loadExperimentFromStore(exp, sweepPolicies(exp, opts),
                                   experimentCellKeys(exp, opts),
                                   cache);
}

StoredSweep
loadExperimentFromStore(const Experiment &exp,
                        const std::vector<std::string> &policies,
                        const std::vector<store::CellKey> &keys,
                        store::ResultStore &cache)
{
    StoredSweep sweep;
    std::vector<core::CellSummary> summaries;
    for (const auto &key : keys) {
        if (auto summary = cache.loadCell(key))
            summaries.push_back(std::move(*summary));
        else
            sweep.missing.push_back(key);
    }
    if (sweep.missing.empty())
        sweep.points = sweepPointsFrom(exp, policies, summaries);
    return sweep;
}

void
renderExperiment(std::ostream &os, const Experiment &exp,
                 const std::vector<std::string> &policies,
                 const std::vector<SweepPoint> &points)
{
    banner(os, exp.experiment, exp.caption);
    printFigure(os, exp.title, exp.yLabel, policies, points,
                [&exp](const core::CellSummary &cell) {
                    return fidelityOf(exp, cell);
                },
                exp.threshold);
}

void
renderExperiment(std::ostream &os, const Experiment &exp,
                 const std::vector<SweepPoint> &points)
{
    renderExperiment(os, exp, exp.policies, points);
}

void
renderExperiment(const Experiment &exp,
                 const std::vector<std::string> &policies,
                 const std::vector<SweepPoint> &points)
{
    renderExperiment(std::cout, exp, policies, points);
}

} // namespace etc::bench
