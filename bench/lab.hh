/**
 * @file
 * etc_lab: unified campaign orchestration CLI over the result store.
 *
 * Subcommands (one registry experiment per invocation):
 *
 *   run     execute the sweep, persisting every cell to --cache-dir;
 *           stored cells are skipped outright, partially-stored cells
 *           resume from their shards, and each cell executes as
 *           --chunks shard records so a killed run loses at most one
 *           chunk of progress. Renders the figure when done.
 *   resume  alias of run that requires --cache-dir (documents intent
 *           after a kill; run already resumes from whatever exists).
 *   merge   promote complete shard sets into cell records without
 *           running anything (after `--shard i/N` fan-out).
 *   report  render the figure purely from stored records -- no
 *           simulation at all; fails if any cell is missing.
 *   list    print the experiment registry (name, figure, workload,
 *           cell count, default trials, error counts).
 *
 * Campaign-service subcommands (src/service/):
 *
 *   serve   long-running HTTP daemon: submitted experiments/cells
 *           execute on an async worker pool over the result store;
 *           SIGINT/SIGTERM finishes and persists in-flight shard
 *           chunks, then exits with a summary.
 *   submit  POST a job to a daemon (optionally --wait until drained).
 *   status  GET a job's status and per-cell progress.
 *   fetch   GET a figure (byte-identical to `report` on the daemon's
 *           cache) or a stored cell record.
 *
 * A figure rendered by run, by report from the warm cache, by a
 * direct uncached run, and by GET /v1/figures/<name> is
 * byte-identical: records store fidelity values as IEEE-754 bit
 * patterns and cells are pure functions of their keys.
 */

#ifndef ETC_BENCH_LAB_HH
#define ETC_BENCH_LAB_HH

namespace etc::bench {

/** Full etc_lab entry point (argv parsing included). */
int labMain(int argc, char **argv);

} // namespace etc::bench

#endif // ETC_BENCH_LAB_HH
