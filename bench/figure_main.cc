#include "bench/figure_main.hh"

#include <iostream>

#include "bench/experiments.hh"
#include "support/logging.hh"

namespace etc::bench {

int
figureMain(const std::string &name, int argc, char **argv)
{
    auto opts = parseBenchArgs(argc, argv);
    const Experiment *exp = findExperiment(name);
    if (!exp)
        panic("figureMain: unregistered experiment '", name, "'");

    try {
        auto workload = workloads::createWorkload(exp->workload,
                                                  exp->scale);
        core::ErrorToleranceStudy study(*workload,
                                        makeStudyConfig(*exp, opts));
        auto sweep = makeSweepConfig(*exp, opts);
        auto points = runSweep(*workload, study, sweep);
        if (opts.sharded()) {
            inform(exp->name, ": shard ", opts.shardIndex, "/",
                   opts.shardCount, " stored in ", opts.cacheDir,
                   "; run the remaining shards, then render with an "
                   "unsharded run or `etc_lab report`");
            return 0;
        }
        renderExperiment(*exp, sweep.policies, points);
        return 0;
    } catch (const FatalError &error) {
        std::cerr << error.what() << '\n';
        return 1;
    }
}

} // namespace etc::bench
