#include "bench/lab.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/lint.hh"
#include "bench/experiments.hh"
#include "core/query.hh"
#include "core/vulnerability_report.hh"
#include "service/client.hh"
#include "service/http_server.hh"
#include "service/scheduler.hh"
#include "service/service.hh"
#include "service/worker.hh"
#include "store/index.hh"
#include "store/json.hh"
#include "store/result_store.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/table.hh"
#include "telemetry/trace.hh"

namespace etc::bench {

namespace {

struct LabOptions
{
    std::string command;    //!< run | resume | merge | report | list
                            //!< | query | reindex | policies
                            //!< | analyze | lint | serve | submit
                            //!< | status | fetch | stats
    std::string experiment; //!< registry name (--experiment)
    std::string workload;   //!< analyze/lint: registry workload name
    unsigned chunks = 4;    //!< shard records per cell during run
    BenchOptions bench;     //!< the shared campaign knobs (--policy
                            //!< lands in bench.policies)

    // Campaign-service knobs (serve + the remote subcommands).
    uint16_t port = 8977;            //!< --port (serve binds, others dial)
    std::string host = "127.0.0.1";  //!< --host for remote subcommands
    unsigned workers = 2;            //!< serve: local cell workers
                                     //!< (0 = coordinator-only);
                                     //!< work: lease executors
    bool workersSet = false;         //!< --workers given explicitly

    // Fleet knobs (serve + work).
    std::string coordinator;         //!< work: http://HOST:PORT
    std::string workerName;          //!< work: --name (default w<pid>)
    uint64_t leaseTtlMs = 10000;     //!< serve: --lease-ttl-ms
    uint64_t maxLeases = 0;          //!< work: stop after N leases
    uint64_t pollMs = 500;           //!< work: idle poll interval
    std::optional<unsigned> errors;  //!< submit: single-cell error count
    bool wait = false;               //!< submit: poll until the job drains
    std::string job;                 //!< status: job id
    std::string figure;              //!< fetch: figure name
    std::string cell;                //!< fetch: cell fingerprint
    bool verbose = false;            //!< serve: per-request access log

    // Archive-query knobs (query + reindex).
    std::vector<unsigned> errorsList;  //!< query: every --errors value
    std::optional<uint64_t> querySeed; //!< query: --seed filter, only
                                       //!< when explicitly given
    std::string agg = "cells";         //!< query: aggregation name
    std::string basePolicy = "protected"; //!< query: delta baseline
    bool json = false;                 //!< query: print the envelope
    bool quarantine = false;           //!< reindex: move corrupt aside
};

[[noreturn]] void
usage(int status)
{
    std::cerr
        << "usage: etc_lab <subcommand> [options]\n"
           "\n"
           "local subcommands:\n"
           "  run     execute the sweep; persist every cell to the\n"
           "          cache, skip stored cells, resume partial ones,\n"
           "          then render the figure. SIGINT/SIGTERM finishes\n"
           "          the in-flight shard chunk, persists it, and\n"
           "          exits with a summary (status 130)\n"
           "  resume  same as run (requires --cache-dir); continues a\n"
           "          killed campaign from its stored shards\n"
           "  merge   promote complete shard sets into cell records\n"
           "          (no simulation)\n"
           "  report  render the figure purely from stored records\n"
           "          (no simulation; fails on missing cells)\n"
           "  list    print the experiment registry (with --cache-dir,\n"
           "          a 'cached' column reports archive coverage per\n"
           "          experiment from the secondary index)\n"
           "  query   roll up the archived cells of a cache directory\n"
           "          (--cache-dir) without simulating anything:\n"
           "          filter by --workload/--policy/--errors/--seed/\n"
           "          --trials, aggregate with --agg (cells, coverage,\n"
           "          curve, delta, cdf, avf; --base names delta's\n"
           "          baseline policy). Prints a table; --json prints\n"
           "          the exact bytes GET /v1/query serves\n"
           "  reindex rebuild the secondary index from a full store\n"
           "          scan, reporting orphaned shard files and corrupt\n"
           "          records (count + paths; --quarantine moves\n"
           "          corrupt files under index/quarantine/); nonzero\n"
           "          exit when corruption was found\n"
           "  policies\n"
           "          print the injection-policy registry (name,\n"
           "          description, result kinds, bit model) -- the\n"
           "          same rows GET /v1/policies serves\n"
           "  analyze print the static ACE/AVF vulnerability report of\n"
           "          one workload (--workload; --policy to pick the\n"
           "          classified policies) -- the same bytes\n"
           "          GET /v1/analysis/<workload> serves\n"
           "  lint    run the assembly lint (CFG well-formedness,\n"
           "          unreachable code, uninitialized reads, stack\n"
           "          discipline, injectable-bitmap consistency) over\n"
           "          one workload (--workload) or the whole registry;\n"
           "          nonzero exit on findings\n"
           "\n"
           "campaign-service subcommands:\n"
           "  serve   run the HTTP campaign daemon: submitted jobs\n"
           "          decompose into shard-range leases executed by\n"
           "          the local worker pool and/or remote `etc_lab\n"
           "          work` agents (--workers 0 = coordinator-only:\n"
           "          all simulation happens on workers); lapsed\n"
           "          leases re-issue automatically and fleet results\n"
           "          are bit-identical to single-host runs;\n"
           "          SIGINT/SIGTERM drains in-flight chunks and\n"
           "          exits cleanly\n"
           "  work    run a worker agent: pull shard-range leases\n"
           "          from a coordinator daemon (--coordinator\n"
           "          http://HOST:PORT), execute them through the\n"
           "          same cache-aware engine, push the canonical\n"
           "          shard records back, heartbeat while executing\n"
           "  submit  POST a job to a daemon (--experiment, optional\n"
           "          --errors/--mode for one cell, --wait to poll\n"
           "          until it drains)\n"
           "  status  GET a job's status (--job ID)\n"
           "  fetch   GET a figure (--figure NAME; bytes match\n"
           "          `etc_lab report`) or a cell record (--cell KEY)\n"
           "  stats   GET /v1/metricz from a daemon and render the\n"
           "          scrape as a human table (metric, type, value)\n"
           "\n"
           "options:\n"
           "  --experiment NAME        one of: "
        << experimentNames()
        << "\n"
           "  --cache-dir DIR          result-store root (required for\n"
           "                           resume/merge/report/serve)\n"
           "  --no-cache               run without persistence\n"
           "  --trials N               trials per cell (>= 1; default:\n"
           "                           the experiment's)\n"
           "  --policy NAME            run/resume/merge/report: sweep\n"
           "                           this injection policy instead\n"
           "                           of the experiment's own list\n"
           "                           (repeatable). submit: the\n"
           "                           single cell's policy (needs\n"
           "                           --errors). See `etc_lab\n"
           "                           policies` for the registry\n"
           "  --threads N              worker threads (0 = all cores)\n"
           "  --seed S                 master study seed (decimal or 0x"
           " hex)\n"
           "  --checkpoint-interval N  golden-run checkpoint spacing\n"
           "  --static-prune           synthesize provably-masked\n"
           "                           trials instead of simulating\n"
           "                           them (results are identical\n"
           "                           either way)\n"
           "  --gang-width N|auto      trial lanes per lockstep gang on\n"
           "                           the checkpointed fast path (0 =\n"
           "                           scalar, auto = runner default;\n"
           "                           results are identical either\n"
           "                           way). serve: daemon-wide\n"
           "                           default; submit: this job's\n"
           "                           width\n"
           "  --workload NAME          analyze/lint: the registry\n"
           "                           workload to analyze (lint\n"
           "                           defaults to all)\n"
           "  --shard i/N              run only trial stripe i of N per\n"
           "                           cell, then exit (no rendering)\n"
           "  --chunks N               shard records per cell while\n"
           "                           running (default 4; bounds lost\n"
           "                           work on a kill)\n"
           "  --port N                 daemon TCP port (default 8977;\n"
           "                           serve: 0 picks one). The daemon\n"
           "                           binds 127.0.0.1 only\n"
           "  --host H                 daemon host for submit/status/\n"
           "                           fetch (default 127.0.0.1; a\n"
           "                           remote daemon is loopback-only,\n"
           "                           so reach it through a tunnel or\n"
           "                           port forward)\n"
           "  --workers K              serve: local cell workers\n"
           "                           (default 2; 0 = coordinator-\n"
           "                           only, remote agents do all the\n"
           "                           simulating). work: concurrent\n"
           "                           lease executors (default 1)\n"
           "  --coordinator URL        work: the coordinator daemon,\n"
           "                           http://HOST:PORT (required)\n"
           "  --name NAME              work: worker name on lease\n"
           "                           calls (default w<pid>)\n"
           "  --lease-ttl-ms N         serve: lease heartbeat deadline\n"
           "                           before re-issue (default 10000)\n"
           "  --max-leases N           work: exit after N leases\n"
           "                           (default: run until SIGTERM)\n"
           "  --poll-ms N              work: idle poll interval when\n"
           "                           the coordinator has no work\n"
           "                           (default 500)\n"
           "  --errors N               submit: one cell at this error\n"
           "                           count instead of the whole sweep.\n"
           "                           query: filter to this error\n"
           "                           count (repeatable)\n"
           "  --agg NAME               query: the rollup to compute\n"
           "                           (cells, coverage, curve, delta,\n"
           "                           cdf, avf; default cells)\n"
           "  --base NAME              query: delta's baseline policy\n"
           "                           (default protected)\n"
           "  --json                   query: print the JSON envelope\n"
           "                           (byte-identical to GET\n"
           "                           /v1/query) instead of a table\n"
           "  --quarantine             reindex: move corrupt record\n"
           "                           files under index/quarantine/\n"
           "  --mode M                 deprecated alias of --policy\n"
           "  --wait                   submit: poll until the job\n"
           "                           drains, then print its status\n"
           "  --job ID                 status: the job to query\n"
           "  --figure NAME            fetch: render this experiment's\n"
           "                           figure from the daemon's store\n"
           "  --cell KEY               fetch: stored record of this\n"
           "                           cell fingerprint\n"
           "  --trace-out FILE         run/serve: write Chrome Trace\n"
           "                           Event JSONL spans to FILE (view\n"
           "                           via `jq -s . FILE` in Perfetto;\n"
           "                           results are identical with\n"
           "                           tracing on or off)\n"
           "  --verbose                serve: one access-log line per\n"
           "                           HTTP request (method, path,\n"
           "                           status, bytes, latency)\n"
           "  --help                   this message\n"
           "\n"
           "Results are bit-identical for every --threads value, every\n"
           "--shard split, every --chunks value, across kill/resume,\n"
           "and whether cells were computed by `run` or by a daemon --\n"
           "only wall-clock time changes.\n";
    std::exit(status);
}

LabOptions
parseLabArgs(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    LabOptions opts;
    opts.command = argv[1];
    if (opts.command == "--help" || opts.command == "-h")
        usage(0);
    const std::vector<std::string> commands = {
        "run",     "resume", "merge",  "report",  "list",   "query",
        "reindex", "policies", "analyze", "lint", "serve",  "work",
        "submit",  "status", "fetch",  "stats"};
    if (std::find(commands.begin(), commands.end(), opts.command) ==
        commands.end()) {
        std::cerr << "etc_lab: unknown subcommand '" << opts.command
                  << "'\n";
        usage(2);
    }

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto valueOf = [&](const std::string &flag)
            -> std::optional<std::string> {
            if (arg == flag) {
                if (i + 1 >= argc)
                    fatal(flag, " expects a value");
                return std::string(argv[++i]);
            }
            if (arg.rfind(flag + "=", 0) == 0)
                return arg.substr(flag.size() + 1);
            return std::nullopt;
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (auto name = valueOf("--experiment")) {
            opts.experiment = *name;
        } else if (auto dir = valueOf("--cache-dir")) {
            opts.bench.cacheDir = *dir;
        } else if (arg == "--no-cache") {
            opts.bench.noCache = true;
        } else if (auto trials = valueOf("--trials")) {
            opts.bench.trials = parseCount32("--trials", *trials);
            if (opts.bench.trials == 0)
                fatal("--trials must be >= 1 (omit the flag for the "
                      "experiment default)");
        } else if (auto threads = valueOf("--threads")) {
            opts.bench.threads = parseCount32("--threads", *threads);
        } else if (auto seed = valueOf("--seed")) {
            opts.bench.seed = parseSeedValue("--seed", *seed);
            opts.querySeed = opts.bench.seed;
        } else if (auto interval = valueOf("--checkpoint-interval")) {
            opts.bench.checkpointInterval =
                parseCountValue("--checkpoint-interval", *interval,
                                std::numeric_limits<uint64_t>::max());
        } else if (arg == "--static-prune") {
            opts.bench.staticPrune = true;
        } else if (auto gang = valueOf("--gang-width")) {
            opts.bench.gangWidth =
                parseGangWidthValue("--gang-width", *gang);
        } else if (auto workload = valueOf("--workload")) {
            opts.workload = *workload;
        } else if (auto shard = valueOf("--shard")) {
            parseShardSpec(*shard, opts.bench.shardIndex,
                           opts.bench.shardCount);
        } else if (auto chunks = valueOf("--chunks")) {
            opts.chunks = parseCount32("--chunks", *chunks);
            if (opts.chunks == 0)
                fatal("--chunks must be >= 1");
        } else if (auto port = valueOf("--port")) {
            opts.port = static_cast<uint16_t>(
                parseCountValue("--port", *port, 65535));
        } else if (auto host = valueOf("--host")) {
            opts.host = *host;
        } else if (auto workers = valueOf("--workers")) {
            opts.workers = parseCount32("--workers", *workers);
            opts.workersSet = true;
            if (opts.workers == 0 && opts.command != "serve")
                fatal("--workers must be >= 1 (only `serve` accepts "
                      "0 for a coordinator-only daemon)");
        } else if (auto coordinator = valueOf("--coordinator")) {
            opts.coordinator = *coordinator;
        } else if (auto name = valueOf("--name")) {
            opts.workerName = *name;
        } else if (auto ttl = valueOf("--lease-ttl-ms")) {
            opts.leaseTtlMs = parseCountValue(
                "--lease-ttl-ms", *ttl,
                std::numeric_limits<uint64_t>::max());
            if (opts.leaseTtlMs == 0)
                fatal("--lease-ttl-ms must be >= 1");
        } else if (auto leases = valueOf("--max-leases")) {
            opts.maxLeases = parseCountValue(
                "--max-leases", *leases,
                std::numeric_limits<uint64_t>::max());
        } else if (auto poll = valueOf("--poll-ms")) {
            opts.pollMs = parseCountValue(
                "--poll-ms", *poll,
                std::numeric_limits<uint64_t>::max());
        } else if (auto errors = valueOf("--errors")) {
            opts.errors = parseCount32("--errors", *errors);
            opts.errorsList.push_back(*opts.errors);
        } else if (auto agg = valueOf("--agg")) {
            opts.agg = *agg;
        } else if (auto base = valueOf("--base")) {
            opts.basePolicy = parsePolicyName(*base).name;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--quarantine") {
            opts.quarantine = true;
        } else if (auto policy = valueOf("--policy")) {
            opts.bench.policies.push_back(
                parsePolicyName(*policy).name);
        } else if (auto mode = valueOf("--mode")) {
            // Deprecated alias kept for pre-policy scripts.
            opts.bench.policies.push_back(parsePolicyName(*mode).name);
        } else if (arg == "--wait") {
            opts.wait = true;
        } else if (auto job = valueOf("--job")) {
            opts.job = *job;
        } else if (auto figure = valueOf("--figure")) {
            opts.figure = *figure;
        } else if (auto cell = valueOf("--cell")) {
            opts.cell = *cell;
        } else if (auto trace = valueOf("--trace-out")) {
            if (trace->empty())
                fatal("--trace-out expects a file path");
            opts.bench.traceOut = *trace;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else {
            std::cerr << "etc_lab: unknown argument '" << arg << "'\n";
            usage(2);
        }
    }

    bool local = opts.command == "run" || opts.command == "resume" ||
                 opts.command == "merge" || opts.command == "report";
    bool cached = !opts.bench.cacheDir.empty() && !opts.bench.noCache;
    if (local && opts.experiment.empty())
        fatal("--experiment is required (one of: ", experimentNames(),
              ")");
    if (local && opts.command != "run" && !cached)
        fatal(opts.command, " requires --cache-dir (and no --no-cache)");
    if (opts.bench.sharded() && !cached)
        fatal("--shard requires --cache-dir (the stripe's results "
              "must be persisted somewhere)");
    if (!opts.workload.empty()) {
        auto names = workloads::workloadNames();
        if (std::find(names.begin(), names.end(), opts.workload) ==
            names.end())
            fatal("unknown workload '", opts.workload,
                  "' (available: ", [&names] {
                      std::string list;
                      for (const auto &name : names) {
                          if (!list.empty())
                              list += ", ";
                          list += name;
                      }
                      return list;
                  }(), ")");
    }
    if (opts.command == "analyze" && opts.workload.empty())
        fatal("analyze requires --workload NAME");
    if ((opts.command == "query" || opts.command == "reindex") &&
        !cached)
        fatal(opts.command, " requires --cache-dir (it reads the "
              "archive, never simulates)");
    if (opts.command == "submit" && opts.errorsList.size() > 1)
        fatal("submit takes a single --errors (one cell per "
              "submission)");
    if (opts.command == "serve" && !cached)
        fatal("serve requires --cache-dir (jobs persist to and resume "
              "from the result store)");
    if (opts.command == "serve" && opts.bench.sharded())
        fatal("serve does not take --shard (the daemon schedules its "
              "own stripes)");
    if (opts.command == "work" && opts.coordinator.empty())
        fatal("work requires --coordinator http://HOST:PORT");
    if (opts.command != "work" && !opts.coordinator.empty())
        fatal("--coordinator only applies to `work`");
    if (opts.command == "submit" && opts.experiment.empty())
        fatal("submit requires --experiment");
    if (opts.command == "submit" && !opts.errors &&
        !opts.bench.policies.empty())
        fatal("submit: --policy requires --errors (a single-cell "
              "submission names both)");
    if (opts.command == "submit" && opts.bench.policies.size() > 1)
        fatal("submit takes a single --policy (one cell per "
              "submission)");
    if (opts.command == "status" && opts.job.empty())
        fatal("status requires --job ID");
    if (opts.command == "fetch" &&
        opts.figure.empty() == opts.cell.empty())
        fatal("fetch requires exactly one of --figure NAME or "
              "--cell KEY");
    // Tracing is enabled at parse time (like parseBenchArgs does for
    // the bench drivers) so every subcommand's spans are captured.
    if (!opts.bench.traceOut.empty())
        telemetry::Tracer::instance().open(opts.bench.traceOut);
    return opts;
}

void
emitLabJson(const LabOptions &opts, size_t cells, size_t cellsCached,
            size_t cellsComputed, uint64_t trialsExecuted,
            bool interrupted = false)
{
    std::cerr << "ETC_LAB_JSON {"
              << "\"command\":\"" << opts.command << "\","
              << "\"experiment\":\"" << opts.experiment << "\","
              << "\"cells\":" << cells << ","
              << "\"cells_cached\":" << cellsCached << ","
              << "\"cells_computed\":" << cellsComputed << ","
              << "\"trials_executed\":" << trialsExecuted << ","
              << "\"interrupted\":" << (interrupted ? "true" : "false")
              << "}" << std::endl;
}

/** Exit status of a run cut short by SIGINT/SIGTERM (128 + SIGINT). */
constexpr int EXIT_INTERRUPTED = 130;

int
labRun(const LabOptions &opts, const Experiment &exp)
{
    installStopSignalHandlers();
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts.bench);
    unsigned trials = opts.bench.trialsOr(exp.defaultTrials);
    auto policies = sweepPolicies(exp, opts.bench);
    auto cells = experimentCells(exp, policies);
    bool useCache = !config.cacheDir.empty();

    // Cell keys derive from static analysis alone, so a fully warm
    // run serves everything from the store without simulating at
    // all; the study (whose constructor executes the golden
    // profiling run) is built lazily on the first cache miss.
    std::optional<analysis::ProtectionResult> protection;
    std::optional<store::ResultStore> cache;
    if (useCache) {
        protection = core::computeStudyProtection(*workload, config);
        cache.emplace(config.cacheDir);
    }
    std::unique_ptr<core::ErrorToleranceStudy> study;
    auto ensureStudy = [&]() -> core::ErrorToleranceStudy & {
        if (!study)
            study = std::make_unique<core::ErrorToleranceStudy>(
                *workload, config);
        return *study;
    };
    auto keyOf = [&](unsigned errors, const std::string &policy) {
        return core::makeCellKey(*workload, *protection, config,
                                 errors, policy, trials);
    };
    auto trialsExecuted = [&]() {
        return study ? study->trialsExecuted() : 0;
    };
    auto interruptedExit = [&](size_t cells, size_t cellsCached,
                               size_t cellsComputed) {
        inform("etc_lab: interrupted; the in-flight shard chunk was ",
               useCache ? "finished and persisted -- resume with "
                          "`etc_lab resume`"
                        : "finished (no --cache-dir, progress "
                          "discarded)");
        emitLabJson(opts, cells, cellsCached, cellsComputed,
                    trialsExecuted(), true);
        return EXIT_INTERRUPTED;
    };

    if (opts.bench.sharded()) {
        // Stripe mode: classify by actual loads (a corrupt record
        // must recompute, not silently skip).
        size_t stripesCached = 0, stripesComputed = 0;
        auto [lo, hi] = core::ErrorToleranceStudy::shardRange(
            trials, opts.bench.shardIndex, opts.bench.shardCount);
        for (const auto &[errors, policy] : cells) {
            if (stopRequested())
                return interruptedExit(cells.size(), stripesCached,
                                       stripesComputed);
            inform(exp.name, ": errors=", errors, " shard ",
                   opts.bench.shardIndex, "/", opts.bench.shardCount,
                   " (", policy, ")");
            auto key = keyOf(errors, policy);
            if (cache->loadCell(key) || cache->loadShard(key, lo, hi)) {
                ++stripesCached;
                continue;
            }
            ++stripesComputed;
            ensureStudy().runCellShard(errors, policy, trials,
                                       opts.bench.shardIndex,
                                       opts.bench.shardCount);
        }
        inform("etc_lab: shard ", opts.bench.shardIndex, "/",
               opts.bench.shardCount, " of '", exp.name,
               "' stored in ", opts.bench.cacheDir,
               "; run the remaining shards, then `etc_lab merge` and "
               "`etc_lab report`");
        emitLabJson(opts, cells.size(), stripesCached, stripesComputed,
                    trialsExecuted());
        return 0;
    }

    size_t cellsCached = 0, cellsComputed = 0;
    std::vector<core::CellSummary> summaries;
    for (const auto &[errors, policy] : cells) {
        if (stopRequested())
            return interruptedExit(cells.size(), cellsCached,
                                   cellsComputed);
        // Classify by an actual load, not existence: a corrupt record
        // must take the computed path (with chunked kill protection),
        // not silently degrade it.
        std::optional<core::CellSummary> cached =
            useCache ? cache->loadCell(keyOf(errors, policy))
                     : std::nullopt;
        (cached ? cellsCached : cellsComputed) += 1;
        inform(exp.name, ": errors=", errors, " (", policy, ", ",
               trials, " trials", cached ? ", cached)" : ")");
        core::CellSummary summary;
        if (cached) {
            summary = std::move(*cached);
        } else {
            if (useCache && opts.chunks > 1) {
                // Chunked execution: persist progress every 1/chunks
                // of the cell, so a kill loses at most one chunk;
                // runCell below assembles the shards into the cell
                // record. A stop request between chunks leaves the
                // finished ones persisted and exits cleanly.
                for (unsigned c = 0; c < opts.chunks; ++c) {
                    if (stopRequested())
                        return interruptedExit(cells.size(),
                                               cellsCached,
                                               cellsComputed);
                    ensureStudy().runCellShard(errors, policy, trials,
                                               c, opts.chunks);
                }
            }
            summary = ensureStudy().runCell(errors, policy, trials);
        }
        emitCellJson(workload->name(), policy, errors, summary,
                     config);
        summaries.push_back(std::move(summary));
    }

    renderExperiment(exp, policies,
                     sweepPointsFrom(exp, policies, summaries));
    emitLabJson(opts, summaries.size(), cellsCached, cellsComputed,
                trialsExecuted());
    return 0;
}

int
labMerge(const LabOptions &opts, const Experiment &exp)
{
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts.bench);
    auto protection = core::computeStudyProtection(*workload, config);
    unsigned trials = opts.bench.trialsOr(exp.defaultTrials);
    store::ResultStore cache(config.cacheDir);

    size_t complete = 0, merged = 0, incomplete = 0;
    for (const auto &[errors, policy] :
         experimentCells(exp, sweepPolicies(exp, opts.bench))) {
        auto key = core::makeCellKey(*workload, protection, config,
                                     errors, policy, trials);
        if (cache.loadCell(key)) {
            cache.dropShards(key); // reclaim leftovers
            ++complete;
            continue;
        }
        // Tolerate shards from mixed splits (e.g. chunks of a killed
        // run plus --shard stripes): keep a prefix-tiling subset and
        // merge if it covers the cell.
        auto shards = store::selectPrefixTiling(cache.loadShards(key));
        try {
            auto summary =
                store::mergeShardSummaries(key, std::move(shards));
            cache.storeCell(key, summary);
            cache.dropShards(key);
            ++merged;
            inform("etc_lab: merged ", key.canonical());
        } catch (const store::StoreFormatError &error) {
            ++incomplete;
            inform("etc_lab: cannot merge ", key.canonical(), ": ",
                   error.what());
        }
    }
    inform("etc_lab: ", complete, " cells already complete, ", merged,
           " merged from shards, ", incomplete, " still incomplete");
    emitLabJson(opts, complete + merged + incomplete,
                complete + merged, 0, 0);
    return incomplete ? 1 : 0;
}

int
labReport(const LabOptions &opts, const Experiment &exp)
{
    store::ResultStore cache(opts.bench.cacheDir);
    auto sweep = loadExperimentFromStore(exp, opts.bench, cache);
    if (!sweep.complete())
        fatal("no stored record for cell ",
              sweep.missing.front().canonical(), " in ",
              opts.bench.cacheDir,
              " -- run `etc_lab run` (or `merge` after sharded "
              "runs) first");

    renderExperiment(std::cout, exp, sweepPolicies(exp, opts.bench),
                     sweep.points);
    size_t cells =
        experimentCells(exp, sweepPolicies(exp, opts.bench)).size();
    emitLabJson(opts, cells, cells, 0, 0);
    return 0;
}

int
labPolicies()
{
    // The same describeInjectionPolicies() rows GET /v1/policies
    // serves -- one code path, two renderings.
    Table table({"name", "legacy", "scope", "result kinds",
                 "bit model", "hash", "description"});
    for (const auto &row : fault::describeInjectionPolicies())
        table.addRow({row.name, row.legacy ? "yes" : "-", row.scope,
                      row.resultKinds, row.bitModel, row.hash,
                      row.description});
    table.print(std::cout);
    return 0;
}

int
labList(const LabOptions &opts)
{
    // With a cache directory, report per-experiment archive coverage
    // ("cached cells / total") from the secondary index. Cell keys
    // need the workload assembled and analyzed, so only experiments
    // whose workload has at least one indexed cell pay that.
    bool cached = !opts.bench.cacheDir.empty() && !opts.bench.noCache;
    std::optional<store::StoreIndex> index;
    std::set<std::string> indexedWorkloads;
    if (cached) {
        index.emplace(opts.bench.cacheDir);
        index->load();
        for (const auto &[fingerprint, entry] : index->entries()) {
            (void)fingerprint;
            if (entry.complete)
                indexedWorkloads.insert(entry.key.workload);
        }
    }

    Table table({"name", "figure", "workload", "cells", "cached",
                 "trials", "error counts"});
    for (const auto &exp : experiments()) {
        std::string errorCounts;
        for (unsigned errors : exp.errorCounts) {
            if (!errorCounts.empty())
                errorCounts += ',';
            errorCounts += std::to_string(errors);
        }
        size_t cells = experimentCells(exp).size();
        std::string coverage = "-";
        if (index) {
            size_t hits = 0;
            size_t total =
                experimentCells(exp, sweepPolicies(exp, opts.bench))
                    .size();
            if (indexedWorkloads.count(exp.workload))
                for (const auto &key :
                     experimentCellKeys(exp, opts.bench))
                    if (index->hasCell(key.fingerprint()))
                        ++hits;
            coverage = std::to_string(hits) + "/" +
                       std::to_string(total);
        }
        table.addRow({exp.name, exp.experiment, exp.workload,
                      std::to_string(cells), coverage,
                      std::to_string(exp.defaultTrials), errorCounts});
    }
    table.print(std::cout);
    return 0;
}

int
labQuery(const LabOptions &opts)
{
    core::QueryOptions options;
    options.filter.workload = opts.workload;
    options.filter.policies = opts.bench.policies;
    options.filter.errors = opts.errorsList;
    if (opts.querySeed)
        options.filter.seed = *opts.querySeed;
    if (opts.bench.trials)
        options.filter.trials = opts.bench.trials;
    options.basePolicy = opts.basePolicy;
    try {
        options.agg = core::parseQueryAgg(opts.agg);
        auto report = core::runQuery(opts.bench.cacheDir, options);
        if (opts.json) {
            // Raw envelope bytes, no added newline: stdout must be
            // byte-identical to GET /v1/query on the same cache.
            std::cout << report.json << std::flush;
        } else {
            report.table.print(std::cout);
            inform("etc_lab: matched ", report.cellsMatched, " of ",
                   report.cellsIndexed, " indexed cells (",
                   report.recordsLoaded,
                   " records loaded, 0 trials simulated)");
        }
        return 0;
    } catch (const core::QueryError &error) {
        std::cerr << "etc_lab: " << error.what() << '\n';
        return 1;
    }
}

int
labReindex(const LabOptions &opts)
{
    store::StoreIndex index(opts.bench.cacheDir);
    auto report = index.rebuild(opts.quarantine);
    std::cout << "cells indexed: " << report.cells << '\n'
              << "shard sets indexed: " << report.shardSets << '\n'
              << "orphaned shards: " << report.orphanedShards.size()
              << '\n';
    for (const auto &path : report.orphanedShards)
        std::cout << "  orphaned: " << path << '\n';
    std::cout << "corrupt records: " << report.corruptRecords.size()
              << '\n';
    for (const auto &path : report.corruptRecords)
        std::cout << "  corrupt: " << path
                  << (opts.quarantine ? " (quarantined)" : "") << '\n';
    std::cerr << "ETC_REINDEX_JSON {"
              << "\"cells\":" << report.cells << ","
              << "\"shard_sets\":" << report.shardSets << ","
              << "\"orphaned_shards\":" << report.orphanedShards.size()
              << ","
              << "\"corrupt_records\":" << report.corruptRecords.size()
              << ","
              << "\"quarantined\":" << report.quarantined << "}"
              << std::endl;
    return report.corruptRecords.empty() ? 0 : 1;
}

int
labAnalyze(const LabOptions &opts)
{
    auto workload = workloads::createWorkload(opts.workload);
    // The exact bytes GET /v1/analysis/<workload> serves (when run
    // with the default policy pair).
    std::cout << core::renderVulnerabilityReport(
        core::buildVulnerabilityReport(*workload, opts.bench.policies));
    return 0;
}

int
labLint(const LabOptions &opts)
{
    std::vector<std::string> names;
    if (!opts.workload.empty())
        names.push_back(opts.workload);
    else
        names = workloads::workloadNames();

    size_t totalFindings = 0;
    for (const auto &name : names) {
        auto workload = workloads::createWorkload(name);
        analysis::LintReport report =
            analysis::lintProgram(workload->program());
        // The tag bitmap the campaigns inject under: lint it against
        // every registered policy's invariants too.
        auto protection = core::computeStudyProtection(
            *workload, core::StudyConfig{});
        analysis::lintInjectable(workload->program(), protection.tagged,
                                 report);
        if (report.clean()) {
            std::cout << name << ": clean\n";
        } else {
            std::cout << name << ": " << report.findings.size()
                      << " finding(s)\n"
                      << report.toString();
            totalFindings += report.findings.size();
        }
    }
    return totalFindings ? 1 : 0;
}

int
labServe(const LabOptions &opts)
{
    service::SchedulerConfig config;
    config.cacheDir = opts.bench.cacheDir;
    config.workers = opts.workers;
    config.threads = opts.bench.threads;
    config.chunks = opts.chunks;
    config.seed = opts.bench.seed;
    config.checkpointInterval = opts.bench.checkpointInterval;
    config.gangWidth = opts.bench.gangWidth;
    config.leaseTtlMs = opts.leaseTtlMs;

    service::Scheduler scheduler(config);
    service::CampaignService service(scheduler);
    service::HttpServer server(
        opts.port, [&service](const service::HttpRequest &request) {
            return service.handle(request);
        });
    server.setAccessLog(opts.verbose);
    scheduler.start();

    installStopSignalHandlers();
    inform("etc_lab: serving campaign API on http://127.0.0.1:",
           server.port(), " (cache ", config.cacheDir, ", ",
           config.workers, " local workers",
           config.workers == 0 ? " -- coordinator-only, attach "
                                 "`etc_lab work` agents"
                               : "",
           ", ", opts.chunks, " chunks per cell, ", config.leaseTtlMs,
           " ms lease TTL)");
    server.run();

    inform("etc_lab: stop requested; finishing and persisting the "
           "in-flight shard chunks");
    scheduler.stop();
    auto stats = scheduler.stats();
    inform("etc_lab: serve summary: ", stats.jobs, " jobs, ",
           stats.cellsDone, " cells done, ",
           stats.cellsQueued + stats.cellsRunning,
           " cells unfinished (their chunks are persisted), ",
           stats.trialsExecuted, " trials executed");
    std::cerr << "ETC_SERVE_JSON {"
              << "\"port\":" << server.port() << ","
              << "\"jobs\":" << stats.jobs << ","
              << "\"cells_done\":" << stats.cellsDone << ","
              << "\"cells_unfinished\":"
              << stats.cellsQueued + stats.cellsRunning << ","
              << "\"cells_failed\":" << stats.cellsFailed << ","
              << "\"trials_executed\":" << stats.trialsExecuted << "}"
              << std::endl;
    return 0;
}

int
labWork(const LabOptions &opts)
{
    // --coordinator http://HOST:PORT (the scheme prefix is
    // optional; a trailing slash or path is rejected rather than
    // silently ignored).
    std::string rest = opts.coordinator;
    if (rest.rfind("http://", 0) == 0)
        rest = rest.substr(7);
    size_t colon = rest.rfind(':');
    if (rest.empty() || rest.find('/') != std::string::npos ||
        colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size())
        fatal("--coordinator expects http://HOST:PORT, got '",
              opts.coordinator, "'");

    service::WorkerConfig config;
    config.host = rest.substr(0, colon);
    config.port = static_cast<uint16_t>(parseCountValue(
        "--coordinator port", rest.substr(colon + 1), 65535));
    config.name = opts.workerName;
    config.cacheDir = opts.bench.cacheDir;
    config.executors = opts.workersSet ? opts.workers : 1;
    config.threads = opts.bench.threads;
    config.maxLeases = opts.maxLeases;
    config.pollMs = opts.pollMs;

    service::WorkerAgent agent(config);
    installStopSignalHandlers();
    agent.start();
    inform("etc_lab: worker '", agent.config().name, "' pulling from ",
           config.host, ":", config.port, " (",
           agent.config().executors, " executors, cache ",
           agent.config().cacheDir, ")");
    agent.join();

    auto summary = agent.summary();
    inform("etc_lab: work summary: ", summary.leasesCompleted,
           " leases completed, ", summary.leasesFailed, " failed, ",
           summary.recordsPushed, " records pushed, ",
           summary.trialsExecuted, " trials executed");
    std::cerr << "ETC_WORK_JSON {"
              << "\"worker\":\"" << agent.config().name << "\","
              << "\"leases_completed\":" << summary.leasesCompleted
              << ","
              << "\"leases_failed\":" << summary.leasesFailed << ","
              << "\"records_pushed\":" << summary.recordsPushed << ","
              << "\"trials_executed\":" << summary.trialsExecuted
              << "}" << std::endl;
    return summary.leasesFailed ? 1 : 0;
}

int
labSubmit(const LabOptions &opts)
{
    service::Client client(opts.host, opts.port);
    store::JsonObjectWriter body;
    body.field("experiment", opts.experiment);
    if (opts.bench.trials)
        body.field("trials", uint64_t{opts.bench.trials});
    if (opts.bench.gangWidth != fault::GANG_WIDTH_AUTO)
        body.field("gangWidth", uint64_t{opts.bench.gangWidth});
    if (opts.errors) {
        body.field("errors", uint64_t{*opts.errors});
        body.field("policy", opts.bench.policies.empty()
                                 ? std::string(fault::PROTECTED_POLICY)
                                 : opts.bench.policies.front());
    }

    auto response = client.post("/v1/jobs", body.str());
    if (!response.ok()) {
        std::cerr << "etc_lab: submit failed: " << response.body
                  << '\n';
        return 1;
    }
    if (!opts.wait) {
        std::cout << response.body << std::endl;
        return 0;
    }

    std::string jobId =
        store::parseJson(response.body).at("job").asString();
    inform("etc_lab: submitted ", jobId, "; waiting for it to drain");
    // Exponential backoff with jitter instead of a fixed-rate poll:
    // short jobs still finish within ~100 ms of draining, long fleet
    // campaigns cost the daemon a request every couple of seconds,
    // and the jitter keeps N waiting submitters from phase-locking
    // into synchronized request bursts.
    uint64_t delayMs = 50;
    constexpr uint64_t MAX_DELAY_MS = 2000;
    std::minstd_rand jitterRng(
        static_cast<std::minstd_rand::result_type>(::getpid()));
    while (true) {
        auto status = client.get("/v1/jobs/" + jobId);
        if (!status.ok()) {
            std::cerr << "etc_lab: status poll failed: " << status.body
                      << '\n';
            return 1;
        }
        std::string state =
            store::parseJson(status.body).at("state").asString();
        if (state == "done" || state == "failed") {
            std::cout << status.body << std::endl;
            return state == "done" ? 0 : 1;
        }
        uint64_t jitter =
            delayMs >= 4 ? jitterRng() % (delayMs / 4) : 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs + jitter));
        delayMs = std::min(delayMs * 2, MAX_DELAY_MS);
    }
}

int
labStats(const LabOptions &opts)
{
    service::Client client(opts.host, opts.port);
    auto response = client.get("/v1/metricz");
    if (!response.ok()) {
        std::cerr << "etc_lab: " << response.body << '\n';
        return 1;
    }

    // Render the scrape as a human table: one row per sample, with
    // each family's TYPE looked up from its exposition header
    // (histogram samples carry _bucket/_sum/_count suffixes and share
    // their family's header).
    std::map<std::string, std::string> types;
    auto typeOf = [&types](const std::string &family) -> std::string {
        if (auto it = types.find(family); it != types.end())
            return it->second;
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            size_t n = std::strlen(suffix);
            if (family.size() > n &&
                family.compare(family.size() - n, n, suffix) == 0) {
                auto base =
                    types.find(family.substr(0, family.size() - n));
                if (base != types.end())
                    return base->second;
            }
        }
        return "-";
    };

    Table table({"metric", "type", "value"});
    std::istringstream lines(response.body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream header(line.substr(7));
            std::string family, type;
            header >> family >> type;
            types[family] = type;
            continue;
        }
        if (line[0] == '#')
            continue; // HELP and comments
        size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            continue;
        std::string series = line.substr(0, space);
        std::string value = line.substr(space + 1);
        table.addRow({series, typeOf(series.substr(0, series.find('{'))),
                      value});
    }
    table.print(std::cout);
    return 0;
}

int
labStatus(const LabOptions &opts)
{
    service::Client client(opts.host, opts.port);
    auto response = client.get("/v1/jobs/" + opts.job);
    if (!response.ok()) {
        std::cerr << "etc_lab: " << response.body << '\n';
        return 1;
    }
    std::cout << response.body << std::endl;
    return 0;
}

int
labFetch(const LabOptions &opts)
{
    service::Client client(opts.host, opts.port);
    if (!opts.figure.empty()) {
        std::string target = "/v1/figures/" + opts.figure;
        if (opts.bench.trials)
            target += "?trials=" + std::to_string(opts.bench.trials);
        auto response = client.get(target);
        if (!response.ok()) {
            std::cerr << "etc_lab: " << response.body << '\n';
            return 1;
        }
        // Raw bytes, no added newline: stdout must be byte-identical
        // to `etc_lab report` on the daemon's cache directory.
        std::cout << response.body << std::flush;
        return 0;
    }
    auto response = client.get("/v1/cells/" + opts.cell);
    if (!response.ok()) {
        std::cerr << "etc_lab: " << response.body << '\n';
        return 1;
    }
    std::cout << response.body << std::endl;
    return 0;
}

} // namespace

int
labMain(int argc, char **argv)
{
    try {
        LabOptions opts = parseLabArgs(argc, argv);
        if (opts.command == "list")
            return labList(opts);
        if (opts.command == "query")
            return labQuery(opts);
        if (opts.command == "reindex")
            return labReindex(opts);
        if (opts.command == "policies")
            return labPolicies();
        if (opts.command == "analyze")
            return labAnalyze(opts);
        if (opts.command == "lint")
            return labLint(opts);
        if (opts.command == "serve")
            return labServe(opts);
        if (opts.command == "work")
            return labWork(opts);
        if (opts.command == "submit")
            return labSubmit(opts);
        if (opts.command == "status")
            return labStatus(opts);
        if (opts.command == "fetch")
            return labFetch(opts);
        if (opts.command == "stats")
            return labStats(opts);
        const Experiment *exp = findExperiment(opts.experiment);
        if (!exp)
            fatal("unknown experiment '", opts.experiment,
                  "' (available: ", experimentNames(), ")");
        if (opts.command == "merge")
            return labMerge(opts, *exp);
        if (opts.command == "report")
            return labReport(opts, *exp);
        return labRun(opts, *exp);
    } catch (const FatalError &error) {
        std::cerr << "etc_lab: " << error.what() << '\n';
        return 1;
    } catch (const store::JsonError &error) {
        std::cerr << "etc_lab: unexpected response: " << error.what()
                  << '\n';
        return 1;
    }
}

} // namespace etc::bench
