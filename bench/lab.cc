#include "bench/lab.hh"

#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/experiments.hh"
#include "store/result_store.hh"
#include "support/logging.hh"

namespace etc::bench {

namespace {

struct LabOptions
{
    std::string command;    //!< run | resume | merge | report
    std::string experiment; //!< registry name (--experiment)
    unsigned chunks = 4;    //!< shard records per cell during run
    BenchOptions bench;     //!< the shared campaign knobs
};

[[noreturn]] void
usage(int status)
{
    std::cerr
        << "usage: etc_lab <run|resume|merge|report> --experiment NAME"
           " [options]\n"
           "\n"
           "subcommands:\n"
           "  run     execute the sweep; persist every cell to the\n"
           "          cache, skip stored cells, resume partial ones,\n"
           "          then render the figure\n"
           "  resume  same as run (requires --cache-dir); continues a\n"
           "          killed campaign from its stored shards\n"
           "  merge   promote complete shard sets into cell records\n"
           "          (no simulation)\n"
           "  report  render the figure purely from stored records\n"
           "          (no simulation; fails on missing cells)\n"
           "\n"
           "options:\n"
           "  --experiment NAME        one of: "
        << experimentNames()
        << "\n"
           "  --cache-dir DIR          result-store root (required for\n"
           "                           resume/merge/report)\n"
           "  --no-cache               run without persistence\n"
           "  --trials N               trials per cell (>= 1; default:\n"
           "                           the experiment's)\n"
           "  --threads N              worker threads (0 = all cores)\n"
           "  --seed S                 master study seed (decimal or 0x"
           " hex)\n"
           "  --checkpoint-interval N  golden-run checkpoint spacing\n"
           "  --shard i/N              run only trial stripe i of N per\n"
           "                           cell, then exit (no rendering)\n"
           "  --chunks N               shard records per cell while\n"
           "                           running (default 4; bounds lost\n"
           "                           work on a kill)\n"
           "  --help                   this message\n"
           "\n"
           "Results are bit-identical for every --threads value, every\n"
           "--shard split, every --chunks value, and across\n"
           "kill/resume -- only wall-clock time changes.\n";
    std::exit(status);
}

LabOptions
parseLabArgs(int argc, char **argv)
{
    if (argc < 2)
        usage(2);
    LabOptions opts;
    opts.command = argv[1];
    if (opts.command == "--help" || opts.command == "-h")
        usage(0);
    if (opts.command != "run" && opts.command != "resume" &&
        opts.command != "merge" && opts.command != "report") {
        std::cerr << "etc_lab: unknown subcommand '" << opts.command
                  << "'\n";
        usage(2);
    }

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto valueOf = [&](const std::string &flag)
            -> std::optional<std::string> {
            if (arg == flag) {
                if (i + 1 >= argc)
                    fatal(flag, " expects a value");
                return std::string(argv[++i]);
            }
            if (arg.rfind(flag + "=", 0) == 0)
                return arg.substr(flag.size() + 1);
            return std::nullopt;
        };
        if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (auto name = valueOf("--experiment")) {
            opts.experiment = *name;
        } else if (auto dir = valueOf("--cache-dir")) {
            opts.bench.cacheDir = *dir;
        } else if (arg == "--no-cache") {
            opts.bench.noCache = true;
        } else if (auto trials = valueOf("--trials")) {
            opts.bench.trials = parseCount32("--trials", *trials);
            if (opts.bench.trials == 0)
                fatal("--trials must be >= 1 (omit the flag for the "
                      "experiment default)");
        } else if (auto threads = valueOf("--threads")) {
            opts.bench.threads = parseCount32("--threads", *threads);
        } else if (auto seed = valueOf("--seed")) {
            opts.bench.seed = parseSeedValue("--seed", *seed);
        } else if (auto interval = valueOf("--checkpoint-interval")) {
            opts.bench.checkpointInterval =
                parseCountValue("--checkpoint-interval", *interval,
                                std::numeric_limits<uint64_t>::max());
        } else if (auto shard = valueOf("--shard")) {
            parseShardSpec(*shard, opts.bench.shardIndex,
                           opts.bench.shardCount);
        } else if (auto chunks = valueOf("--chunks")) {
            opts.chunks = parseCount32("--chunks", *chunks);
            if (opts.chunks == 0)
                fatal("--chunks must be >= 1");
        } else {
            std::cerr << "etc_lab: unknown argument '" << arg << "'\n";
            usage(2);
        }
    }

    if (opts.experiment.empty())
        fatal("--experiment is required (one of: ", experimentNames(),
              ")");
    bool cached = !opts.bench.cacheDir.empty() && !opts.bench.noCache;
    if (opts.command != "run" && !cached)
        fatal(opts.command, " requires --cache-dir (and no --no-cache)");
    if (opts.bench.sharded() && !cached)
        fatal("--shard requires --cache-dir (the stripe's results "
              "must be persisted somewhere)");
    return opts;
}

/** The (errors, mode) cells of an experiment, in sweep order. */
std::vector<std::pair<unsigned, core::ProtectionMode>>
cellsOf(const Experiment &exp)
{
    std::vector<std::pair<unsigned, core::ProtectionMode>> cells;
    for (unsigned errors : exp.errorCounts) {
        cells.emplace_back(errors, core::ProtectionMode::Protected);
        if (exp.runUnprotected)
            cells.emplace_back(errors,
                               core::ProtectionMode::Unprotected);
    }
    return cells;
}

void
emitLabJson(const LabOptions &opts, size_t cells, size_t cellsCached,
            size_t cellsComputed, uint64_t trialsExecuted)
{
    std::cerr << "ETC_LAB_JSON {"
              << "\"command\":\"" << opts.command << "\","
              << "\"experiment\":\"" << opts.experiment << "\","
              << "\"cells\":" << cells << ","
              << "\"cells_cached\":" << cellsCached << ","
              << "\"cells_computed\":" << cellsComputed << ","
              << "\"trials_executed\":" << trialsExecuted << "}"
              << std::endl;
}

/** Fold per-cell summaries back into sweep points, in sweep order. */
std::vector<SweepPoint>
pointsFrom(const Experiment &exp,
           const std::vector<core::CellSummary> &summaries)
{
    std::vector<SweepPoint> points;
    size_t next = 0;
    for (unsigned errors : exp.errorCounts) {
        SweepPoint point;
        point.errors = errors;
        point.protectedCell = summaries.at(next++);
        if (exp.runUnprotected) {
            point.hasUnprotected = true;
            point.unprotectedCell = summaries.at(next++);
        }
        points.push_back(std::move(point));
    }
    return points;
}

int
labRun(const LabOptions &opts, const Experiment &exp)
{
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts.bench);
    unsigned trials = opts.bench.trialsOr(exp.defaultTrials);
    bool useCache = !config.cacheDir.empty();

    // Cell keys derive from static analysis alone, so a fully warm
    // run serves everything from the store without simulating at
    // all; the study (whose constructor executes the golden
    // profiling run) is built lazily on the first cache miss.
    std::optional<analysis::ProtectionResult> protection;
    std::optional<store::ResultStore> cache;
    if (useCache) {
        protection = core::computeStudyProtection(*workload, config);
        cache.emplace(config.cacheDir);
    }
    std::unique_ptr<core::ErrorToleranceStudy> study;
    auto ensureStudy = [&]() -> core::ErrorToleranceStudy & {
        if (!study)
            study = std::make_unique<core::ErrorToleranceStudy>(
                *workload, config);
        return *study;
    };
    auto keyOf = [&](unsigned errors, core::ProtectionMode mode) {
        return core::makeCellKey(*workload, *protection, config,
                                 errors, mode, trials);
    };
    auto trialsExecuted = [&]() {
        return study ? study->trialsExecuted() : 0;
    };

    if (opts.bench.sharded()) {
        // Stripe mode: classify by actual loads (a corrupt record
        // must recompute, not silently skip).
        size_t stripesCached = 0, stripesComputed = 0;
        auto [lo, hi] = core::ErrorToleranceStudy::shardRange(
            trials, opts.bench.shardIndex, opts.bench.shardCount);
        for (auto [errors, mode] : cellsOf(exp)) {
            inform(exp.name, ": errors=", errors, " shard ",
                   opts.bench.shardIndex, "/", opts.bench.shardCount,
                   " (", store::modeName(mode), ")");
            auto key = keyOf(errors, mode);
            if (cache->loadCell(key) || cache->loadShard(key, lo, hi)) {
                ++stripesCached;
                continue;
            }
            ++stripesComputed;
            ensureStudy().runCellShard(errors, mode, trials,
                                       opts.bench.shardIndex,
                                       opts.bench.shardCount);
        }
        inform("etc_lab: shard ", opts.bench.shardIndex, "/",
               opts.bench.shardCount, " of '", exp.name,
               "' stored in ", opts.bench.cacheDir,
               "; run the remaining shards, then `etc_lab merge` and "
               "`etc_lab report`");
        emitLabJson(opts, cellsOf(exp).size(), stripesCached,
                    stripesComputed, trialsExecuted());
        return 0;
    }

    size_t cellsCached = 0, cellsComputed = 0;
    std::vector<core::CellSummary> summaries;
    for (auto [errors, mode] : cellsOf(exp)) {
        // Classify by an actual load, not existence: a corrupt record
        // must take the computed path (with chunked kill protection),
        // not silently degrade it.
        std::optional<core::CellSummary> cached =
            useCache ? cache->loadCell(keyOf(errors, mode))
                     : std::nullopt;
        (cached ? cellsCached : cellsComputed) += 1;
        inform(exp.name, ": errors=", errors, " (",
               store::modeName(mode), ", ", trials, " trials",
               cached ? ", cached)" : ")");
        core::CellSummary summary;
        if (cached) {
            summary = std::move(*cached);
        } else {
            if (useCache && opts.chunks > 1) {
                // Chunked execution: persist progress every 1/chunks
                // of the cell, so a kill loses at most one chunk;
                // runCell below assembles the shards into the cell
                // record.
                for (unsigned c = 0; c < opts.chunks; ++c)
                    ensureStudy().runCellShard(errors, mode, trials, c,
                                               opts.chunks);
            }
            summary = ensureStudy().runCell(errors, mode, trials);
        }
        emitCellJson(workload->name(), store::modeName(mode), errors,
                     summary, config);
        summaries.push_back(std::move(summary));
    }

    renderExperiment(exp, pointsFrom(exp, summaries));
    emitLabJson(opts, summaries.size(), cellsCached, cellsComputed,
                trialsExecuted());
    return 0;
}

int
labMerge(const LabOptions &opts, const Experiment &exp)
{
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts.bench);
    auto protection = core::computeStudyProtection(*workload, config);
    unsigned trials = opts.bench.trialsOr(exp.defaultTrials);
    store::ResultStore cache(config.cacheDir);

    size_t complete = 0, merged = 0, incomplete = 0;
    for (auto [errors, mode] : cellsOf(exp)) {
        auto key = core::makeCellKey(*workload, protection, config,
                                     errors, mode, trials);
        if (cache.loadCell(key)) {
            cache.dropShards(key); // reclaim leftovers
            ++complete;
            continue;
        }
        // Tolerate shards from mixed splits (e.g. chunks of a killed
        // run plus --shard stripes): keep a prefix-tiling subset and
        // merge if it covers the cell.
        auto shards = store::selectPrefixTiling(cache.loadShards(key));
        try {
            auto summary =
                store::mergeShardSummaries(key, std::move(shards));
            cache.storeCell(key, summary);
            cache.dropShards(key);
            ++merged;
            inform("etc_lab: merged ", key.canonical());
        } catch (const store::StoreFormatError &error) {
            ++incomplete;
            inform("etc_lab: cannot merge ", key.canonical(), ": ",
                   error.what());
        }
    }
    inform("etc_lab: ", complete, " cells already complete, ", merged,
           " merged from shards, ", incomplete, " still incomplete");
    emitLabJson(opts, complete + merged + incomplete,
                complete + merged, 0, 0);
    return incomplete ? 1 : 0;
}

int
labReport(const LabOptions &opts, const Experiment &exp)
{
    auto workload = workloads::createWorkload(exp.workload, exp.scale);
    auto config = makeStudyConfig(exp, opts.bench);
    auto protection = core::computeStudyProtection(*workload, config);
    unsigned trials = opts.bench.trialsOr(exp.defaultTrials);
    store::ResultStore cache(config.cacheDir);

    std::vector<core::CellSummary> summaries;
    for (auto [errors, mode] : cellsOf(exp)) {
        auto key = core::makeCellKey(*workload, protection, config,
                                     errors, mode, trials);
        auto summary = cache.loadCell(key);
        if (!summary)
            fatal("no stored record for cell ", key.canonical(),
                  " in ", config.cacheDir,
                  " -- run `etc_lab run` (or `merge` after sharded "
                  "runs) first");
        summaries.push_back(std::move(*summary));
    }

    renderExperiment(exp, pointsFrom(exp, summaries));
    emitLabJson(opts, summaries.size(), summaries.size(), 0, 0);
    return 0;
}

} // namespace

int
labMain(int argc, char **argv)
{
    try {
        LabOptions opts = parseLabArgs(argc, argv);
        const Experiment *exp = findExperiment(opts.experiment);
        if (!exp)
            fatal("unknown experiment '", opts.experiment,
                  "' (available: ", experimentNames(), ")");
        if (opts.command == "merge")
            return labMerge(opts, *exp);
        if (opts.command == "report")
            return labReport(opts, *exp);
        return labRun(opts, *exp);
    } catch (const FatalError &error) {
        std::cerr << "etc_lab: " << error.what() << '\n';
        return 1;
    }
}

} // namespace etc::bench
