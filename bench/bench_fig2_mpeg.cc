/**
 * @file
 * Figure 2 reproduction: MPEG percentage of bad frames vs. errors
 * inserted with static analysis ON (the paper has no OFF series --
 * every unprotected simulation crashed), plus the failure series and
 * the 10% viewer threshold.
 *
 * Sweep data lives in the experiments registry ("fig2"), shared with
 * the etc_lab CLI: cells persist to --cache-dir, stored cells are
 * skipped, and --shard i/N computes one trial stripe per process.
 */

#include "bench/figure_main.hh"

int
main(int argc, char **argv)
{
    return etc::bench::figureMain("fig2", argc, argv);
}
