/**
 * @file
 * Figure 2 reproduction: MPEG percentage of bad frames vs. errors
 * inserted with static analysis ON (the paper has no OFF series --
 * every unprotected simulation crashed), plus the failure series and
 * the 10% viewer threshold.
 */

#include <iostream>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/mpeg.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 2",
                  "MPEG: % bad frames and % failed executions vs. "
                  "errors inserted (threshold 10% bad frames)");

    workloads::MpegWorkload workload(
        workloads::MpegWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {25, 50, 100, 250, 500};
    sweep.trials = opts.trialsOr(25);
    sweep.runUnprotected = true; // shown for completeness
    auto points = bench::runSweep(workload, study, sweep);

    bench::printFigure(
        "Figure 2: MPEG", "% bad frames", points,
        [](const core::CellSummary &cell) {
            return 100.0 * cell.meanFidelity();
        },
        10.0);
    return 0;
}
