/**
 * @file
 * Shared main() for the bench_fig* drivers: parse the common flags,
 * run the registered experiment's sweep (cache- and shard-aware
 * through the study), and render the figure.
 */

#ifndef ETC_BENCH_FIGURE_MAIN_HH
#define ETC_BENCH_FIGURE_MAIN_HH

#include <string>

namespace etc::bench {

/**
 * Execute the registry experiment @p name with the given argv.
 *
 * In sharded mode (--shard i/N) only the stripe is computed and
 * persisted; rendering is skipped (stdout stays empty) -- assemble
 * the stored shards later with an unsharded run or `etc_lab merge` +
 * `report`.
 *
 * @return the process exit status
 */
int figureMain(const std::string &name, int argc, char **argv);

} // namespace etc::bench

#endif // ETC_BENCH_FIGURE_MAIN_HH
