/**
 * @file
 * Ablation B: memory fault model and conservative memory tracking.
 *
 * Part 1 -- platform: the paper ran on SimpleScalar's zero-filled
 * functional memory (Lenient). A bounds-checking platform (Strict)
 * turns wild data accesses into crashes, inflating the residual
 * with-protection failure rate.
 *
 * Part 2 -- analysis: the paper performs no memory disambiguation, its
 * stated residual failure source (tagged values stored, reloaded, and
 * used for control). Conservative memory tracking (one memory
 * pseudo-location) closes that hole at the cost of tagging less.
 */

#include <iostream>

#include "bench/common.hh"
#include "support/logging.hh"

using namespace etc;
using fault::PROTECTED_POLICY;
using fault::UNPROTECTED_POLICY;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Ablation B: memory model & memory tracking",
                  "SimpleScalar-like vs. bounds-checked memory; "
                  "no-disambiguation vs. conservative tracking");

    constexpr unsigned TRIALS = 30;

    Table platform({"Algorithm", "Errors", "memory model",
                    "% fail (protected)"});
    for (const char *name : {"adpcm", "blowfish", "mcf"}) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        unsigned errors = std::string(name) == "mcf" ? 50 : 30;
        for (auto model : {sim::MemoryModel::Lenient,
                           sim::MemoryModel::Strict}) {
            core::StudyConfig config;
            opts.applyTo(config);
            config.trials = opts.trialsOr(TRIALS);
            config.memoryModel = model;
            core::ErrorToleranceStudy study(*workload, config);
            inform("ablation-memory: ", name, " model=",
                   model == sim::MemoryModel::Lenient ? "lenient"
                                                      : "strict");
            auto cell = study.runCell(errors, PROTECTED_POLICY);
            bench::emitCellJson(name, model == sim::MemoryModel::Lenient
                                          ? "protected-lenient"
                                          : "protected-strict",
                                errors, cell, study.config());
            platform.addRow({
                name,
                std::to_string(errors),
                model == sim::MemoryModel::Lenient
                    ? "lenient (SimpleScalar-like)"
                    : "strict (bounds-checked)",
                formatPercent(cell.failureRate()),
            });
        }
    }
    platform.print(std::cout);

    std::cout << '\n';
    Table tracking({"Algorithm", "Errors", "analysis", "% dyn tagged",
                    "% fail (protected)"});
    for (const char *name : {"mcf", "gsm"}) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        unsigned errors = std::string(name) == "mcf" ? 50 : 30;
        for (bool trackMemory : {false, true}) {
            core::StudyConfig config;
            opts.applyTo(config);
            config.trials = opts.trialsOr(TRIALS);
            config.protection.trackMemory = trackMemory;
            core::ErrorToleranceStudy study(*workload, config);
            inform("ablation-tracking: ", name,
                   " trackMemory=", trackMemory);
            auto cell = study.runCell(errors, PROTECTED_POLICY);
            bench::emitCellJson(name, trackMemory
                                          ? "protected-memtrack"
                                          : "protected",
                                errors, cell, study.config());
            tracking.addRow({
                name,
                std::to_string(errors),
                trackMemory ? "conservative memory tracking"
                            : "paper (no disambiguation)",
                formatPercent(study.profile().taggedFraction()),
                formatPercent(cell.failureRate()),
            });
        }
    }
    tracking.print(std::cout);
    std::cout << "\n(expected: strict memory and no-tracking both "
                 "raise residual failures; tracking shrinks the "
                 "tagged fraction)\n";
    return 0;
}
