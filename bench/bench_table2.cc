/**
 * @file
 * Table 2 reproduction: percentage of catastrophic failures (crashes
 * or "infinite" runs) with and without protecting control data, at the
 * paper's two error counts per application.
 *
 * Absolute rates differ from the paper because our kernels are far
 * shorter than the SPEC/MiBench reference runs (the same error count
 * is a much higher error *density* here); the shape to check is:
 * protected rates are near zero at low error counts and far below the
 * unprotected rates everywhere.
 */

#include <iostream>

#include "support/logging.hh"

#include "bench/common.hh"

using namespace etc;
using fault::PROTECTED_POLICY;
using fault::UNPROTECTED_POLICY;

namespace {

struct Table2Row
{
    const char *app;
    std::vector<unsigned> errorCounts;
    /** Paper-reported % failures (with, without) per error count. */
    std::vector<std::pair<const char *, const char *>> paper;
};

const std::vector<Table2Row> rows = {
    {"susan", {2200}, {{"0%", "10%"}}},
    {"mpeg", {20, 120}, {{"0%", "100%"}, {"0%", "100%"}}},
    {"mcf", {1, 340}, {{"0%", "100%"}, {"6%", "100%"}}},
    {"blowfish", {2, 20}, {{"0%", "10%"}, {"19%", "48%"}}},
    {"gsm", {10, 40}, {{"0%", "100%"}, {"0%", "100%"}}},
    {"art", {4}, {{"0%", "0%"}}},
    {"adpcm", {3, 56}, {{"2%", "8.5%"}, {"8%", "53.5%"}}},
};

} // namespace

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);

    constexpr unsigned TRIALS = 30;
    Table table({"Algorithm", "Errors", "Total instrs",
                 "% fail (protected)", "paper", "% fail (unprotected)",
                 "paper"});

    for (const auto &row : rows) {
        auto workload = workloads::createWorkload(
            row.app, workloads::Scale::Bench);
        core::StudyConfig config;
        opts.applyTo(config);
        config.trials = opts.trialsOr(TRIALS);
        core::ErrorToleranceStudy study(*workload, config);
        if (opts.sharded()) {
            // Stripe mode: persist this process's share of every cell
            // and skip rendering; a later unsharded run assembles the
            // shards from the cache into the full table.
            for (unsigned errors : row.errorCounts) {
                inform("table2: ", row.app, " @ ", errors,
                       " errors, shard ", opts.shardIndex, "/",
                       opts.shardCount);
                study.runCellShard(errors, PROTECTED_POLICY,
                                   config.trials, opts.shardIndex,
                                   opts.shardCount);
                study.runCellShard(errors, UNPROTECTED_POLICY,
                                   config.trials, opts.shardIndex,
                                   opts.shardCount);
            }
            continue;
        }
        for (size_t i = 0; i < row.errorCounts.size(); ++i) {
            unsigned errors = row.errorCounts[i];
            inform("table2: ", row.app, " @ ", errors, " errors");
            auto prot = study.runCell(errors, PROTECTED_POLICY);
            bench::emitCellJson(row.app, "protected", errors, prot,
                                study.config());
            auto unprot =
                study.runCell(errors, UNPROTECTED_POLICY);
            bench::emitCellJson(row.app, "unprotected", errors, unprot,
                                study.config());
            table.addRow({
                i == 0 ? row.app : "",
                std::to_string(errors),
                std::to_string(study.goldenInstructions()),
                formatPercent(prot.failureRate()),
                row.paper[i].first,
                formatPercent(unprot.failureRate()),
                row.paper[i].second,
            });
        }
    }
    if (opts.sharded()) {
        inform("table2: shard ", opts.shardIndex, "/", opts.shardCount,
               " stored in ", opts.cacheDir,
               "; run the remaining shards, then rerun unsharded to "
               "render the table");
        return 0;
    }
    bench::banner("Table 2",
                  "Catastrophic failures with and without protecting "
                  "control data");
    table.print(std::cout);
    std::cout << "\n(paper columns: values reported by Thaker et al. "
                 "on 144M-42B instruction runs)\n";
    return 0;
}
