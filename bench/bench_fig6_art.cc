/**
 * @file
 * Figure 6 reproduction: ART percentage of images still recognized
 * (correct template at the correct window, confidence in band) vs.
 * errors inserted. Paper shape: recognition drops to ~75% with only
 * two errors, yet the application never fails catastrophically.
 */

#include <iostream>
#include <limits>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/art.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 6",
                  "ART: % images recognized and % failed executions "
                  "vs. errors inserted");

    workloads::ArtWorkload workload(
        workloads::ArtWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {0, 1, 2, 3, 4};
    sweep.trials = opts.trialsOr(40);
    sweep.runUnprotected = true;
    auto points = bench::runSweep(workload, study, sweep);

    bench::printFigure(
        "Figure 6: ART", "% images recognized", points,
        [](const core::CellSummary &cell) {
            return 100.0 * cell.acceptableRate();
        },
        std::numeric_limits<double>::quiet_NaN());
    return 0;
}
