/**
 * @file
 * Figure 6 reproduction: ART percentage of images recognized and %
 * failed executions vs. errors inserted.
 *
 * Sweep data lives in the experiments registry ("fig6"), shared with
 * the etc_lab CLI: cells persist to --cache-dir, stored cells are
 * skipped, and --shard i/N computes one trial stripe per process.
 */

#include "bench/figure_main.hh"

int
main(int argc, char **argv)
{
    return etc::bench::figureMain("fig6", argc, argv);
}
