/**
 * @file
 * Figure 4 reproduction: Blowfish percentage of output bytes correct
 * and % failed executions vs. errors inserted.
 *
 * Sweep data lives in the experiments registry ("fig4"), shared with
 * the etc_lab CLI: cells persist to --cache-dir, stored cells are
 * skipped, and --shard i/N computes one trial stripe per process.
 */

#include "bench/figure_main.hh"

int
main(int argc, char **argv)
{
    return etc::bench::figureMain("fig4", argc, argv);
}
