/**
 * @file
 * Figure 4 reproduction: Blowfish percentage of round-tripped
 * plaintext bytes matching the original vs. errors inserted, plus the
 * failure series. Paper shape: output identical at ~10 errors, then a
 * gradual precision loss and a growing failure rate.
 */

#include <iostream>
#include <limits>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/blowfish.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 4",
                  "Blowfish: % bytes correct and % failed executions "
                  "vs. errors inserted");

    workloads::BlowfishWorkload workload(
        workloads::BlowfishWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {1, 5, 10, 20, 30, 40};
    sweep.trials = opts.trialsOr(20);
    sweep.runUnprotected = true;
    auto points = bench::runSweep(workload, study, sweep);

    bench::printFigure(
        "Figure 4: Blowfish", "% bytes correct", points,
        [](const core::CellSummary &cell) {
            return 100.0 * cell.meanFidelity();
        },
        std::numeric_limits<double>::quiet_NaN());
    return 0;
}
