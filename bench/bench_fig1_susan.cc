/**
 * @file
 * Figure 1 reproduction: Susan edge-detection PSNR vs. errors
 * inserted, with static analysis ON and OFF, against the 10 dB
 * fidelity threshold. Paper shape: protection keeps PSNR above the
 * threshold well past 1000 errors; unprotected fidelity is far worse
 * at the same error count (and some unprotected runs crash).
 */

#include <iostream>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/susan.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 1",
                  "Susan: PSNR of pictures with error vs. errors "
                  "inserted (threshold 10 dB)");

    workloads::SusanWorkload workload(
        workloads::SusanWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {100, 500, 920, 1100, 1550, 2300};
    sweep.trials = opts.trialsOr(25);
    sweep.runUnprotected = true;
    auto points = bench::runSweep(workload, study, sweep);

    bench::printFigure(
        "Figure 1: Susan", "PSNR (dB)", points,
        [](const core::CellSummary &cell) { return cell.meanFidelity(); },
        10.0);
    return 0;
}
