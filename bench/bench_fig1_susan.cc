/**
 * @file
 * Figure 1 reproduction: Susan edge-detection PSNR vs. errors
 * inserted, with static analysis ON and OFF, against the 10 dB
 * fidelity threshold. Paper shape: protection keeps PSNR above the
 * threshold well past 1000 errors; unprotected fidelity is far worse
 * at the same error count (and some unprotected runs crash).
 *
 * Sweep data lives in the experiments registry ("fig1"), shared with
 * the etc_lab CLI: cells persist to --cache-dir, stored cells are
 * skipped, and --shard i/N computes one trial stripe per process.
 */

#include "bench/figure_main.hh"

int
main(int argc, char **argv)
{
    return etc::bench::figureMain("fig1", argc, argv);
}
