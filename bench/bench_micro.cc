/**
 * @file
 * Microbenchmarks (google-benchmark): simulator throughput per
 * workload, static-analysis throughput, assembler throughput, and the
 * injector hook's overhead. These size the experimental harness, not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "analysis/control_protection.hh"
#include "asm/assembler.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;

void
simulateWorkload(benchmark::State &state, const std::string &name)
{
    auto workload = workloads::createWorkload(name,
                                              workloads::Scale::Test);
    sim::Simulator sim(workload->program());
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim.reset();
        auto result = sim.run();
        if (!result.completed())
            state.SkipWithError("golden run failed");
        instructions += result.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_SimulateSusan(benchmark::State &state)
{
    simulateWorkload(state, "susan");
}
BENCHMARK(BM_SimulateSusan);

void
BM_SimulateBlowfish(benchmark::State &state)
{
    simulateWorkload(state, "blowfish");
}
BENCHMARK(BM_SimulateBlowfish);

void
BM_SimulateArtFloatingPoint(benchmark::State &state)
{
    simulateWorkload(state, "art");
}
BENCHMARK(BM_SimulateArtFloatingPoint);

void
BM_SimulatorWithInjectorHook(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());
    sim::Simulator sim(workload->program());
    uint64_t instructions = 0;
    for (auto _ : state) {
        fault::Injector injector(injectable, fault::InjectionPlan{});
        sim.reset();
        auto result = sim.run(0, &injector);
        instructions += result.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorWithInjectorHook);

/**
 * A full Monte-Carlo campaign cell, swept over worker threads
 * (args: threads, checkpoint interval). The trials are bit-identical
 * across the whole sweep (counter-based RNG streams, checkpoint
 * determinism), so the arg axes show pure wall-clock scaling of the
 * paper-figure hot path: interval 0 is the classic hooked full-replay
 * interpreter, a nonzero interval the checkpointed hookless fast path.
 */
void
BM_CampaignCell(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());
    fault::CampaignRunner runner(
        workload->program(), std::move(injectable),
        sim::MemoryModel::Lenient,
        static_cast<uint64_t>(state.range(1)));
    fault::CampaignConfig config;
    config.trials = 64;
    config.errors = 4;
    config.threads = static_cast<unsigned>(state.range(0));
    uint64_t trials = 0;
    for (auto _ : state) {
        auto result = runner.run(config);
        benchmark::DoNotOptimize(result.completed);
        trials += result.trials;
    }
    state.counters["trials/s"] = benchmark::Counter(
        static_cast<double>(trials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignCell)
    ->ArgNames({"threads", "ckpt"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Checkpoint restore cost: rewinding a simulator to a mid-run snapshot
 * (registers + page image + output prefix). This is what replaces the
 * fault-free prefix re-execution of every trial.
 */
void
BM_CheckpointRestore(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());

    // Profile the golden run at a fine interval, keeping the recording
    // simulator's output as the golden stream.
    sim::Simulator golden(workload->program());
    sim::CheckpointStore store;
    golden.memory().resetDirtyTracking();
    sim::CheckpointRecorder recorder(injectable, 1024, golden, store);
    auto result = golden.run(0, &recorder);
    if (!result.completed() || store.empty()) {
        state.SkipWithError("golden run failed or too short");
        return;
    }
    const sim::Checkpoint &mid = store[store.size() / 2];

    sim::Simulator sim(workload->program());
    for (auto _ : state) {
        sim.restoreFrom(mid, golden.output());
        benchmark::DoNotOptimize(sim.machine().pc);
    }
    state.counters["skipped instr"] =
        static_cast<double>(mid.instructions);
}
BENCHMARK(BM_CheckpointRestore);

void
BM_ControlProtectionAnalysis(benchmark::State &state)
{
    auto workload = workloads::createWorkload("blowfish",
                                              workloads::Scale::Test);
    analysis::ProtectionConfig config;
    config.eligibleFunctions = workload->eligibleFunctions();
    for (auto _ : state) {
        auto result = analysis::computeControlProtection(
            workload->program(), config);
        benchmark::DoNotOptimize(result.numTagged);
    }
    state.counters["instrs"] = static_cast<double>(
        workload->program().size());
}
BENCHMARK(BM_ControlProtectionAnalysis);

void
BM_Assembler(benchmark::State &state)
{
    std::ostringstream source;
    source << ".data\nbuf: .space 64\n.text\n.func main\nmain:\n";
    for (int i = 0; i < 200; ++i)
        source << "  addi $t0, $t0, " << i << "\n"
               << "  sw $t0, 0($sp)\n";
    source << "  halt\n.endfunc\n";
    std::string text = source.str();
    for (auto _ : state) {
        auto prog = assembly::assemble(text);
        benchmark::DoNotOptimize(prog.size());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Assembler);

void
BM_WorkloadConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = workloads::createWorkload(
            "mpeg", workloads::Scale::Test);
        benchmark::DoNotOptimize(workload->program().size());
    }
}
BENCHMARK(BM_WorkloadConstruction);

} // namespace

BENCHMARK_MAIN();
