/**
 * @file
 * Microbenchmarks (google-benchmark): simulator throughput per
 * workload, static-analysis throughput, assembler throughput, and the
 * injector hook's overhead. These size the experimental harness, not
 * the paper's results.
 *
 * `bench_micro --json-out FILE` skips the google-benchmark suites and
 * instead writes a machine-readable campaign-throughput snapshot: one
 * record per registry workload x checkpointing on/off x static-prune
 * on/off x gang width (Test scale, unprotected policy), the source of
 * the repo's BENCH_campaign.json perf trajectory. An existing FILE is
 * never overwritten unless --force is given (perf snapshots must not
 * be lost to a stray rerun). `--workloads a,b` restricts the snapshot
 * to those registry workloads -- CI's schema smoke runs one workload
 * instead of the full sweep.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/control_protection.hh"
#include "asm/assembler.hh"
#include "fault/campaign.hh"
#include "fault/injection.hh"
#include "fault/policy.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace etc;

void
simulateWorkload(benchmark::State &state, const std::string &name)
{
    auto workload = workloads::createWorkload(name,
                                              workloads::Scale::Test);
    sim::Simulator sim(workload->program());
    uint64_t instructions = 0;
    for (auto _ : state) {
        sim.reset();
        auto result = sim.run();
        if (!result.completed())
            state.SkipWithError("golden run failed");
        instructions += result.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_SimulateSusan(benchmark::State &state)
{
    simulateWorkload(state, "susan");
}
BENCHMARK(BM_SimulateSusan);

void
BM_SimulateBlowfish(benchmark::State &state)
{
    simulateWorkload(state, "blowfish");
}
BENCHMARK(BM_SimulateBlowfish);

void
BM_SimulateArtFloatingPoint(benchmark::State &state)
{
    simulateWorkload(state, "art");
}
BENCHMARK(BM_SimulateArtFloatingPoint);

void
BM_SimulatorWithInjectorHook(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());
    sim::Simulator sim(workload->program());
    uint64_t instructions = 0;
    for (auto _ : state) {
        fault::Injector injector(injectable, fault::InjectionPlan{});
        sim.reset();
        auto result = sim.run(0, &injector);
        instructions += result.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorWithInjectorHook);

/**
 * A full Monte-Carlo campaign cell, swept over worker threads,
 * checkpoint interval, and gang width (args: threads, checkpoint
 * interval, gang width). The trials are bit-identical across the
 * whole sweep (counter-based RNG streams, checkpoint determinism,
 * scalar-drained gang divergence), so the arg axes show pure
 * wall-clock scaling of the paper-figure hot path: interval 0 is the
 * classic hooked full-replay interpreter, a nonzero interval the
 * checkpointed hookless fast path, and gang width N batches N trials
 * per lockstep gang on that fast path (0 = scalar).
 */
void
BM_CampaignCell(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());
    fault::CampaignRunner runner(
        workload->program(), std::move(injectable),
        sim::MemoryModel::Lenient,
        static_cast<uint64_t>(state.range(1)));
    fault::CampaignConfig config;
    config.trials = 64;
    config.errors = 4;
    config.threads = static_cast<unsigned>(state.range(0));
    config.gangWidth = static_cast<unsigned>(state.range(2));
    uint64_t trials = 0;
    for (auto _ : state) {
        auto result = runner.run(config);
        benchmark::DoNotOptimize(result.completed);
        trials += result.trials;
    }
    state.counters["trials/s"] = benchmark::Counter(
        static_cast<double>(trials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignCell)
    ->ArgNames({"threads", "ckpt", "gang"})
    ->Args({1, 0, 0})
    ->Args({2, 0, 0})
    ->Args({4, 0, 0})
    ->Args({8, 0, 0})
    ->Args({1, 1024, 0})
    ->Args({2, 1024, 0})
    ->Args({4, 1024, 0})
    ->Args({8, 1024, 0})
    ->Args({1, 1024, 4})
    ->Args({1, 1024, 8})
    ->Args({1, 1024, 16})
    ->Args({4, 1024, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Worst-case gang divergence: mpeg under the control-only policy, so
 * every injected trial flips a control transfer's next PC and leaves
 * the pack at its first fault -- the gang splits maximally and nearly
 * all post-fault work drains through the scalar Simulator. This
 * bounds the gang's overhead when lockstep buys nothing; gang 0 is
 * the scalar reference.
 */
void
BM_GangDivergence(benchmark::State &state)
{
    auto workload = workloads::createWorkload("mpeg",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());
    const fault::InjectionPolicy &policy =
        fault::resolveInjectionPolicy("control-only");
    fault::CampaignRunner runner(
        workload->program(), std::move(injectable),
        sim::MemoryModel::Lenient,
        fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL,
        policy.resultKinds, policy.bitModel);
    fault::CampaignConfig config;
    config.trials = 48;
    config.errors = 1;
    config.threads = 1;
    config.gangWidth = static_cast<unsigned>(state.range(0));
    uint64_t trials = 0;
    for (auto _ : state) {
        auto result = runner.run(config);
        benchmark::DoNotOptimize(result.completed);
        trials += result.trials;
    }
    state.counters["trials/s"] = benchmark::Counter(
        static_cast<double>(trials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GangDivergence)
    ->ArgNames({"gang"})
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Checkpoint restore cost: rewinding a simulator to a mid-run snapshot
 * (registers + page image + output prefix). This is what replaces the
 * fault-free prefix re-execution of every trial.
 */
void
BM_CheckpointRestore(benchmark::State &state)
{
    auto workload = workloads::createWorkload("susan",
                                              workloads::Scale::Test);
    auto injectable =
        fault::injectableWithoutProtection(workload->program());

    // Profile the golden run at a fine interval, keeping the recording
    // simulator's output as the golden stream.
    sim::Simulator golden(workload->program());
    sim::CheckpointStore store;
    golden.memory().resetDirtyTracking();
    sim::CheckpointRecorder recorder(injectable, 1024, golden, store);
    auto result = golden.run(0, &recorder);
    if (!result.completed() || store.empty()) {
        state.SkipWithError("golden run failed or too short");
        return;
    }
    const sim::Checkpoint &mid = store[store.size() / 2];

    sim::Simulator sim(workload->program());
    for (auto _ : state) {
        sim.restoreFrom(mid, golden.output());
        benchmark::DoNotOptimize(sim.machine().pc);
    }
    state.counters["skipped instr"] =
        static_cast<double>(mid.instructions);
}
BENCHMARK(BM_CheckpointRestore);

void
BM_ControlProtectionAnalysis(benchmark::State &state)
{
    auto workload = workloads::createWorkload("blowfish",
                                              workloads::Scale::Test);
    analysis::ProtectionConfig config;
    config.eligibleFunctions = workload->eligibleFunctions();
    for (auto _ : state) {
        auto result = analysis::computeControlProtection(
            workload->program(), config);
        benchmark::DoNotOptimize(result.numTagged);
    }
    state.counters["instrs"] = static_cast<double>(
        workload->program().size());
}
BENCHMARK(BM_ControlProtectionAnalysis);

void
BM_Assembler(benchmark::State &state)
{
    std::ostringstream source;
    source << ".data\nbuf: .space 64\n.text\n.func main\nmain:\n";
    for (int i = 0; i < 200; ++i)
        source << "  addi $t0, $t0, " << i << "\n"
               << "  sw $t0, 0($sp)\n";
    source << "  halt\n.endfunc\n";
    std::string text = source.str();
    for (auto _ : state) {
        auto prog = assembly::assemble(text);
        benchmark::DoNotOptimize(prog.size());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Assembler);

void
BM_WorkloadConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        auto workload = workloads::createWorkload(
            "mpeg", workloads::Scale::Test);
        benchmark::DoNotOptimize(workload->program().size());
    }
}
BENCHMARK(BM_WorkloadConstruction);

/** Readable double for the JSON snapshot (locale-independent). */
std::string
jsonDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

/**
 * The --json-out snapshot: campaign throughput per registry workload
 * under the unprotected legacy policy, with checkpointed trial
 * fast-forwarding, static pruning, and gang width toggled -- the
 * three result-invariant accelerations the campaign layer stacks.
 * Gang widths beyond scalar are swept only on the checkpointed rows
 * (the gang engages only with checkpointing); width 8 is the CI
 * perf-sanity reference, DEFAULT_GANG_WIDTH the auto pick.
 */
int
campaignSnapshot(const std::string &path, bool force,
                 const std::vector<std::string> &only)
{
    if (!force && std::ifstream(path).good()) {
        std::cerr << "bench_micro: " << path
                  << " already exists; pass --force to overwrite the "
                     "perf snapshot\n";
        return 1;
    }

    std::vector<std::string> names;
    for (const auto &name : workloads::workloadNames()) {
        if (only.empty() ||
            std::find(only.begin(), only.end(), name) != only.end())
            names.push_back(name);
    }
    if (names.size() != (only.empty() ? names.size() : only.size())) {
        std::cerr << "bench_micro: --workloads names an unknown "
                     "workload (known:";
        for (const auto &name : workloads::workloadNames())
            std::cerr << ' ' << name;
        std::cerr << ")\n";
        return 1;
    }

    const fault::InjectionPolicy &policy =
        fault::resolveInjectionPolicy(fault::UNPROTECTED_POLICY);
    const uint64_t checkpointIntervals[] = {
        0, fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL};

    std::ostringstream out;
    out << "{\"benchmark\":\"campaign\",\"scale\":\"test\","
           "\"records\":[";
    bool first = true;
    for (const auto &name : names) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Test);
        auto injectable =
            fault::injectableWithoutProtection(workload->program());
        for (uint64_t interval : checkpointIntervals) {
            std::vector<unsigned> gangWidths = {0};
            if (interval > 0) {
                gangWidths.push_back(8);
                gangWidths.push_back(fault::DEFAULT_GANG_WIDTH);
            }
            for (bool prune : {false, true}) {
                fault::CampaignRunner runner(
                    workload->program(), injectable,
                    sim::MemoryModel::Lenient, interval,
                    policy.resultKinds, policy.bitModel, prune);
                for (unsigned gang : gangWidths) {
                    fault::CampaignConfig config;
                    // Enough trials that a cell runs several
                    // full-width gangs and wall times clear
                    // millisecond noise (48-trial cells finish in a
                    // few ms on the fast path).
                    config.trials = 256;
                    config.errors = 1;
                    config.threads = 1;
                    config.gangWidth = gang;
                    auto started = std::chrono::steady_clock::now();
                    auto result = runner.run(config);
                    std::chrono::duration<double> elapsed =
                        std::chrono::steady_clock::now() - started;
                    double wall = elapsed.count();
                    if (!first)
                        out << ',';
                    first = false;
                    out << "{\"workload\":\"" << name << "\","
                        << "\"policy\":\"" << policy.name << "\","
                        << "\"trials\":" << result.trials << ","
                        << "\"errors\":" << config.errors << ","
                        << "\"completed\":" << result.completed << ","
                        << "\"checkpoint_interval\":" << interval
                        << ","
                        << "\"static_prune\":"
                        << (prune ? "true" : "false") << ","
                        << "\"gang_width\":" << gang << ","
                        << "\"trials_pruned\":" << result.trialsPruned
                        << ","
                        << "\"golden_instructions\":"
                        << runner.goldenInstructions() << ","
                        << "\"wall_s\":" << jsonDouble(wall) << ","
                        << "\"trials_per_sec\":"
                        << jsonDouble(wall > 0.0
                                          ? result.trials / wall
                                          : 0.0)
                        << "}";
                    std::cerr << "bench_micro: " << name << " ckpt="
                              << interval << " prune=" << prune
                              << " gang=" << gang << " "
                              << jsonDouble(wall > 0.0
                                                ? result.trials / wall
                                                : 0.0)
                              << " trials/s (" << result.trialsPruned
                              << " pruned)\n";
                }
            }
        }
    }
    out << "]}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
        std::cerr << "bench_micro: cannot write " << path << "\n";
        return 1;
    }
    file << out.str();
    return file.good() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonOut;
    std::string workloadList;
    bool force = false;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json-out" && i + 1 < argc) {
            jsonOut = argv[++i];
        } else if (arg.rfind("--json-out=", 0) == 0) {
            jsonOut = arg.substr(11);
        } else if (arg == "--workloads" && i + 1 < argc) {
            workloadList = argv[++i];
        } else if (arg.rfind("--workloads=", 0) == 0) {
            workloadList = arg.substr(12);
        } else if (arg == "--force") {
            force = true;
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (!jsonOut.empty()) {
        std::vector<std::string> only;
        std::istringstream names(workloadList);
        std::string name;
        while (std::getline(names, name, ','))
            if (!name.empty())
                only.push_back(name);
        return campaignSnapshot(jsonOut, force, only);
    }

    int restc = static_cast<int>(rest.size());
    benchmark::Initialize(&restc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(restc, rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
