/**
 * @file
 * Shared infrastructure for the table/figure reproduction binaries.
 *
 * Every bench_* executable regenerates one table or figure from the
 * paper: it sweeps error counts through ErrorToleranceStudy campaigns,
 * prints the series as an aligned table (with the paper's reported
 * values alongside where applicable), and renders an ASCII chart of
 * the same series so the reproduction's *shape* is visible at a
 * glance. EXPERIMENTS.md records paper-vs-measured for each.
 */

#ifndef ETC_BENCH_COMMON_HH
#define ETC_BENCH_COMMON_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/study.hh"
#include "support/chart.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace etc::bench {

/** One swept error count: a cell per swept injection policy. */
struct SweepPoint
{
    unsigned errors = 0;

    /** One summary per swept policy, in the sweep's policy order. */
    std::vector<core::CellSummary> cells;

    /** The cell of policy index @p i (bounds-checked). */
    const core::CellSummary &cell(size_t i) const { return cells.at(i); }
};

/** Sweep configuration for a figure. */
struct SweepConfig
{
    std::vector<unsigned> errorCounts;
    unsigned trials = 25;

    /** Injection policies swept at every error count, in render
     *  order. The paper figures sweep the legacy pair. */
    std::vector<std::string> policies = {fault::PROTECTED_POLICY,
                                         fault::UNPROTECTED_POLICY};

    /** When shardCount > 0, run only stripe shardIndex of every cell
     *  (persisting shard records via the study's result store). */
    unsigned shardIndex = 0;
    unsigned shardCount = 0;
};

/**
 * Command-line options shared by every bench driver. Campaign results
 * are bit-identical for every thread count, so --threads only changes
 * wall-clock time, never the reproduced numbers.
 */
struct BenchOptions
{
    unsigned threads = 0; //!< campaign worker threads (0 = all cores)
    unsigned trials = 0;  //!< 0 = use the driver's default

    /** --policy NAME (repeatable): override the swept injection
     *  policies; empty = the driver's/experiment's own list. Names
     *  are validated against the policy registry at parse time. */
    std::vector<std::string> policies;

    /** Golden-run checkpoint spacing for trial fast-forwarding
     *  (instructions; 0 = disable checkpointing). */
    uint64_t checkpointInterval =
        fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL;

    /** Master study seed; cells and their cache keys derive from it. */
    uint64_t seed = core::StudyConfig{}.seed;

    /** Result-store root (--cache-dir); empty = no persistence. */
    std::string cacheDir;

    /** --no-cache: ignore --cache-dir and any stored records. */
    bool noCache = false;

    /** --static-prune: skip simulating trials whose every drawn flip
     *  the masked-fault prover proved harmless (bit-identical
     *  results; see core::StudyConfig::staticPrune). */
    bool staticPrune = false;

    /** --gang-width N|auto: trial lanes per gang on the checkpointed
     *  fast path (0 = scalar, "auto" = runner default; bit-identical
     *  results; see core::StudyConfig::gangWidth). */
    unsigned gangWidth = fault::GANG_WIDTH_AUTO;

    /** --shard i/N: run only trial stripe i of N per cell (persisting
     *  shard records) instead of rendering the figure. shardCount == 0
     *  means not sharded. */
    unsigned shardIndex = 0;
    unsigned shardCount = 0;

    /** --trace-out FILE: emit Chrome Trace Event JSONL spans there
     *  (empty = tracing off). parseBenchArgs() opens the tracer
     *  itself; the field records the path for callers that re-plumb
     *  options (etc_lab). Observation only -- results are identical
     *  with tracing on or off. */
    std::string traceOut;

    /** @return true when this process runs one stripe of each cell. */
    bool sharded() const { return shardCount > 0; }

    /** @return the trial count: this option, or @p dflt when unset. */
    unsigned
    trialsOr(unsigned dflt) const
    {
        return trials ? trials : dflt;
    }

    /** Apply the common knobs to a study configuration. */
    void
    applyTo(core::StudyConfig &config) const
    {
        config.threads = threads;
        config.checkpointInterval = checkpointInterval;
        config.seed = seed;
        config.cacheDir = noCache ? std::string() : cacheDir;
        config.staticPrune = staticPrune;
        config.gangWidth = gangWidth;
    }
};

/**
 * Parse the standard bench flags:
 *
 *   --threads N              campaign worker threads (0 = all cores;
 *                            default 0)
 *   --trials N               trials per campaign cell (>= 1; omit for
 *                            the driver default)
 *   --policy NAME            sweep this injection policy instead of
 *                            the driver's own list (repeatable, in
 *                            render order; see `etc_lab policies`)
 *   --checkpoint-interval N  instructions between golden-run checkpoints
 *                            (0 = disable trial fast-forwarding; default
 *                            8192). Never changes reproduced numbers.
 *   --static-prune           synthesize provably-masked trials instead
 *                            of simulating them. Never changes
 *                            reproduced numbers.
 *   --gang-width N|auto      trial lanes per lockstep gang on the
 *                            checkpointed fast path (0 = scalar,
 *                            auto = runner default). Never changes
 *                            reproduced numbers.
 *   --seed S                 master study seed (decimal or 0x hex);
 *                            cells and cache keys derive from it
 *   --cache-dir DIR          persist campaign cells to the result store
 *                            at DIR and skip already-stored cells
 *   --no-cache               ignore --cache-dir and stored records
 *   --shard i/N              run only trial stripe i (0-based) of N per
 *                            cell, persisting shard records to the
 *                            cache instead of rendering results
 *                            (requires --cache-dir)
 *   --trace-out FILE         write Chrome Trace Event JSONL spans to
 *                            FILE (view via `jq -s . FILE` in
 *                            Perfetto). Never changes reproduced
 *                            numbers.
 *   --help                   print usage and exit
 *
 * `--trials 0` is rejected: 0 previously meant "driver default", which
 * silently masked typos; omit the flag instead.
 *
 * Unknown flags print usage and exit with status 2.
 */
BenchOptions parseBenchArgs(int argc, char **argv);

/**
 * Shared flag-value parsers (etc_lab reuses them). All throw
 * FatalError on bad input; callers attach their own usage/exit
 * policy.
 */

/** Overflow-checked decimal parse into [0, max]. */
uint64_t parseCountValue(const std::string &flag,
                         const std::string &text, uint64_t max);

/** parseCountValue() narrowed to unsigned. */
unsigned parseCount32(const std::string &flag, const std::string &text);

/** Decimal or 0x-hex 64-bit seed. */
uint64_t parseSeedValue(const std::string &flag,
                        const std::string &text);

/** Parse a gang-width value: "auto" or 0..GangSimulator::MAX_LANES. */
unsigned parseGangWidthValue(const std::string &flag,
                             const std::string &text);

/** Parse a "--shard i/N" spec (0 <= i < N, N >= 1). */
void parseShardSpec(const std::string &text, unsigned &index,
                    unsigned &count);

/**
 * The one policy-name validator every CLI flag and request field
 * routes through: resolves @p name against the process-wide policy
 * registry, rethrowing the registry's unknown-name error (which lists
 * the known policies) as FatalError for uniform CLI reporting.
 */
const fault::InjectionPolicy &parsePolicyName(const std::string &name);

/**
 * Emit one machine-readable perf record for a campaign cell to stderr
 * (stdout stays byte-identical across thread counts and checkpoint
 * settings), prefixed with "BENCH_JSON " so harnesses can grep it
 * into a BENCH_*.json perf trajectory:
 *
 *   BENCH_JSON {"workload":...,"policy":...,"errors":...,"trials":...,
 *               "wall_s":...,"trials_per_sec":...,
 *               "total_instructions":...,"trials_pruned":...,
 *               "checkpoint_interval":...,"static_prune":...,
 *               "gang_width":...,"threads":...}
 */
void emitCellJson(const std::string &workloadName,
                  const std::string &policy, unsigned errors,
                  const core::CellSummary &cell,
                  const core::StudyConfig &config);

/**
 * Run the sweep through @p study. Progress is reported on stderr (one
 * line per cell). In sharded mode (config.shardCount > 0) only each
 * cell's stripe is computed and persisted, and the returned vector is
 * empty -- the caller skips rendering; a later unsharded run (or
 * `etc_lab merge` + `report`) assembles the stored shards.
 */
std::vector<SweepPoint> runSweep(const workloads::Workload &workload,
                                 core::ErrorToleranceStudy &study,
                                 const SweepConfig &config);

/** Standard banner printed by every bench binary. */
void banner(std::ostream &os, const std::string &experiment,
            const std::string &caption);

/** banner() to std::cout (the bench binaries' stdout contract). */
void banner(const std::string &experiment, const std::string &caption);

/**
 * Print a fidelity/failure figure: a table of the swept cells (one
 * row per error count and policy) plus ASCII charts with one series
 * per policy, labeled with the policy's chart label. Writing to an
 * in-memory stream produces the same bytes the bench binaries put on
 * stdout -- the campaign service's GET /v1/figures/<name> relies on
 * this for its byte-identity contract with `etc_lab report`.
 *
 * @param os           destination stream
 * @param title        chart title (e.g. "Figure 1: Susan")
 * @param yLabel       fidelity axis caption
 * @param policies     the swept policy names (parallel to each
 *                     point's cells vector)
 * @param fidelityOf   extracts the plotted fidelity value of a cell
 * @param threshold    optional fidelity threshold line (NaN = none)
 */
void printFigure(std::ostream &os, const std::string &title,
                 const std::string &yLabel,
                 const std::vector<std::string> &policies,
                 const std::vector<SweepPoint> &points,
                 const std::function<double(const core::CellSummary &)>
                     &fidelityOf,
                 double threshold);

/** printFigure() to std::cout. */
void printFigure(const std::string &title, const std::string &yLabel,
                 const std::vector<std::string> &policies,
                 const std::vector<SweepPoint> &points,
                 const std::function<double(const core::CellSummary &)>
                     &fidelityOf,
                 double threshold);

} // namespace etc::bench

#endif // ETC_BENCH_COMMON_HH
