/**
 * @file
 * Registry of the paper's figure sweeps (plus CI-scale smoke sweeps).
 *
 * Every figure reproduction is the same shape -- banner, workload,
 * study, error-count sweep, table + ASCII charts -- varying only in
 * the data collected here. The bench_fig* drivers and the etc_lab
 * CLI both execute entries from this registry, so a figure rendered
 * by `bench_fig5_gsm`, by `etc_lab run`, and by `etc_lab report`
 * straight from cached records is byte-identical.
 */

#ifndef ETC_BENCH_EXPERIMENTS_HH
#define ETC_BENCH_EXPERIMENTS_HH

#include <string>
#include <utility>
#include <vector>

#include "bench/common.hh"

namespace etc::store {
struct CellKey;
class ResultStore;
} // namespace etc::store

namespace etc::bench {

/** How a cell's plotted fidelity value is derived. */
enum class FidelityMetric
{
    Mean,           //!< meanFidelity()
    MeanPercent,    //!< 100 * meanFidelity()
    AcceptablePct,  //!< 100 * acceptableRate()
};

/** One registered sweep (a paper figure or a smoke-scale sweep). */
struct Experiment
{
    std::string name;       //!< CLI identifier ("fig5", "smoke", ...)
    std::string experiment; //!< banner headline ("Figure 5")
    std::string caption;    //!< banner caption
    std::string title;      //!< chart title ("Figure 5: GSM")
    std::string yLabel;     //!< fidelity axis caption
    std::string workload;   //!< workload factory name
    workloads::Scale scale = workloads::Scale::Bench;
    std::vector<unsigned> errorCounts;
    unsigned defaultTrials = 25;

    /** Injection policies swept at every error count (registry
     *  names, render order). Paper figures sweep the legacy pair,
     *  which is also the default -- an entry that never sets the
     *  field sweeps something rather than silently nothing. */
    std::vector<std::string> policies = {fault::PROTECTED_POLICY,
                                         fault::UNPROTECTED_POLICY};

    double budgetFactor = 0; //!< 0 = the StudyConfig default
    FidelityMetric metric = FidelityMetric::Mean;
    double threshold;        //!< NaN = no threshold line
};

/** All registered experiments, figure order first. */
const std::vector<Experiment> &experiments();

/** @return the registry entry named @p name, or nullptr. */
const Experiment *findExperiment(const std::string &name);

/** @return comma-separated registry names (for usage messages). */
std::string experimentNames();

/** @return the plotted fidelity value of @p cell under @p exp. */
double fidelityOf(const Experiment &exp, const core::CellSummary &cell);

/** Study configuration for @p exp with the common knobs applied. */
core::StudyConfig makeStudyConfig(const Experiment &exp,
                                  const BenchOptions &opts);

/** Sweep configuration for @p exp with the common knobs applied. */
SweepConfig makeSweepConfig(const Experiment &exp,
                            const BenchOptions &opts);

/** The swept policy list: opts.policies when set, else the
 *  experiment's own. */
std::vector<std::string> sweepPolicies(const Experiment &exp,
                                       const BenchOptions &opts);

/** The (errors, policy) cells of the sweep, in sweep order. */
std::vector<std::pair<unsigned, std::string>>
experimentCells(const Experiment &exp,
                const std::vector<std::string> &policies);

/** experimentCells() over the experiment's own policy list. */
std::vector<std::pair<unsigned, std::string>>
experimentCells(const Experiment &exp);

/**
 * Fold per-cell summaries (one per experimentCells() entry, in that
 * order) back into sweep points.
 */
std::vector<SweepPoint> sweepPointsFrom(
    const Experiment &exp, const std::vector<std::string> &policies,
    const std::vector<core::CellSummary> &summaries);

/**
 * Result of loading a whole experiment sweep from the result store
 * without simulating anything (cell keys are rebuilt from static
 * analysis alone).
 */
struct StoredSweep
{
    /** Sweep points, valid iff missing is empty. */
    std::vector<SweepPoint> points;

    /** Keys of the cells with no usable stored record. */
    std::vector<store::CellKey> missing;

    bool complete() const { return missing.empty(); }
};

/**
 * The store keys of every cell of @p exp's sweep (in
 * experimentCells() order), rebuilt from static analysis alone -- no
 * simulation. Callers that look cells up repeatedly (the campaign
 * service's figure endpoint) compute these once and reuse them.
 */
std::vector<store::CellKey> experimentCellKeys(const Experiment &exp,
                                               const BenchOptions &opts);

/**
 * Load every cell of @p exp from @p cache. `etc_lab report` and the
 * campaign service's GET /v1/figures/<name> both render from this, so
 * their output is byte-identical.
 */
StoredSweep loadExperimentFromStore(const Experiment &exp,
                                    const BenchOptions &opts,
                                    store::ResultStore &cache);

/** loadExperimentFromStore() over precomputed experimentCellKeys()
 *  (@p policies must be the list the keys were built from). */
StoredSweep loadExperimentFromStore(
    const Experiment &exp, const std::vector<std::string> &policies,
    const std::vector<store::CellKey> &keys, store::ResultStore &cache);

/** Print @p exp's banner, table, and charts for the swept points
 *  (@p policies parallel to each point's cells). */
void renderExperiment(std::ostream &os, const Experiment &exp,
                      const std::vector<std::string> &policies,
                      const std::vector<SweepPoint> &points);

/** renderExperiment() over the experiment's own policy list. */
void renderExperiment(std::ostream &os, const Experiment &exp,
                      const std::vector<SweepPoint> &points);

/** renderExperiment() to std::cout. */
void renderExperiment(const Experiment &exp,
                      const std::vector<std::string> &policies,
                      const std::vector<SweepPoint> &points);

} // namespace etc::bench

#endif // ETC_BENCH_EXPERIMENTS_HH
