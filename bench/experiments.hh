/**
 * @file
 * Registry of the paper's figure sweeps (plus CI-scale smoke sweeps).
 *
 * Every figure reproduction is the same shape -- banner, workload,
 * study, error-count sweep, table + ASCII charts -- varying only in
 * the data collected here. The bench_fig* drivers and the etc_lab
 * CLI both execute entries from this registry, so a figure rendered
 * by `bench_fig5_gsm`, by `etc_lab run`, and by `etc_lab report`
 * straight from cached records is byte-identical.
 */

#ifndef ETC_BENCH_EXPERIMENTS_HH
#define ETC_BENCH_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "bench/common.hh"

namespace etc::bench {

/** How a cell's plotted fidelity value is derived. */
enum class FidelityMetric
{
    Mean,           //!< meanFidelity()
    MeanPercent,    //!< 100 * meanFidelity()
    AcceptablePct,  //!< 100 * acceptableRate()
};

/** One registered sweep (a paper figure or a smoke-scale sweep). */
struct Experiment
{
    std::string name;       //!< CLI identifier ("fig5", "smoke", ...)
    std::string experiment; //!< banner headline ("Figure 5")
    std::string caption;    //!< banner caption
    std::string title;      //!< chart title ("Figure 5: GSM")
    std::string yLabel;     //!< fidelity axis caption
    std::string workload;   //!< workload factory name
    workloads::Scale scale = workloads::Scale::Bench;
    std::vector<unsigned> errorCounts;
    unsigned defaultTrials = 25;
    bool runUnprotected = true;
    double budgetFactor = 0; //!< 0 = the StudyConfig default
    FidelityMetric metric = FidelityMetric::Mean;
    double threshold;        //!< NaN = no threshold line
};

/** All registered experiments, figure order first. */
const std::vector<Experiment> &experiments();

/** @return the registry entry named @p name, or nullptr. */
const Experiment *findExperiment(const std::string &name);

/** @return comma-separated registry names (for usage messages). */
std::string experimentNames();

/** @return the plotted fidelity value of @p cell under @p exp. */
double fidelityOf(const Experiment &exp, const core::CellSummary &cell);

/** Study configuration for @p exp with the common knobs applied. */
core::StudyConfig makeStudyConfig(const Experiment &exp,
                                  const BenchOptions &opts);

/** Sweep configuration for @p exp with the common knobs applied. */
SweepConfig makeSweepConfig(const Experiment &exp,
                            const BenchOptions &opts);

/** Print @p exp's banner, table, and charts for the swept points. */
void renderExperiment(const Experiment &exp,
                      const std::vector<SweepPoint> &points);

} // namespace etc::bench

#endif // ETC_BENCH_EXPERIMENTS_HH
