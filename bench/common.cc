#include "bench/common.hh"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "store/cell_key.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "telemetry/trace.hh"

namespace etc::bench {

using core::CellSummary;

namespace {

[[noreturn]] void
usage(const char *program, int status)
{
    std::cerr << "usage: " << program
              << " [--threads N] [--trials N] [--policy NAME]...\n"
                 "       [--checkpoint-interval N] [--static-prune]"
                 " [--gang-width N|auto]\n"
                 "       [--seed S] [--cache-dir DIR] [--no-cache]"
                 " [--shard i/N]\n"
              << "  --threads N  campaign worker threads (0 = all "
                 "cores; default 0)\n"
              << "  --trials N   trials per campaign cell (>= 1; omit "
                 "for the driver default)\n"
              << "  --policy NAME  sweep this injection policy instead "
                 "of the driver's\n"
                 "               own list (repeatable, in render "
                 "order). Known policies:\n"
                 "               "
              << fault::injectionPolicyNames() << "\n"
              << "  --checkpoint-interval N  instructions between "
                 "golden-run checkpoints\n"
              << "               (0 disables trial fast-forwarding; "
                 "default "
              << fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL
              << "). Results are identical either way.\n"
              << "  --static-prune  synthesize provably-masked trials "
                 "instead of simulating\n"
                 "               them. Results are identical either "
                 "way.\n"
              << "  --gang-width N|auto  trial lanes per lockstep gang "
                 "on the checkpointed\n"
                 "               fast path (0 = scalar; auto = "
              << fault::DEFAULT_GANG_WIDTH
              << "). Results are identical\n"
                 "               for every width.\n"
              << "  --seed S     master study seed (decimal or 0x hex; "
                 "default "
              << core::StudyConfig{}.seed << ")\n"
              << "  --cache-dir DIR  persist campaign cells to the "
                 "result store at DIR\n"
              << "               and skip already-stored cells\n"
              << "  --no-cache   ignore --cache-dir and stored records\n"
              << "  --shard i/N  run only trial stripe i (0-based) of N "
                 "per cell,\n"
              << "               persisting shard records (requires "
                 "--cache-dir)\n"
              << "  --trace-out FILE  write Chrome Trace Event JSONL "
                 "spans (golden run,\n"
              << "               trials, gangs, chunks) to FILE. "
                 "Observation only: results\n"
              << "               are identical with tracing on or off.\n";
    std::exit(status);
}

} // namespace

uint64_t
parseCountValue(const std::string &flag, const std::string &text,
                uint64_t max)
{
    // Digits only: std::stoull would accept a leading '-' and wrap.
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        fatal("bad value for ", flag, ": '", text, "'");
    uint64_t value = 0;
    for (char c : text) {
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (max - digit) / 10)
            fatal("bad value for ", flag, ": '", text, "'");
        value = value * 10 + digit;
    }
    return value;
}

unsigned
parseCount32(const std::string &flag, const std::string &text)
{
    return static_cast<unsigned>(parseCountValue(
        flag, text, std::numeric_limits<unsigned>::max()));
}

uint64_t
parseSeedValue(const std::string &flag, const std::string &text)
{
    if (text.rfind("0x", 0) == 0) {
        try {
            return store::parseHexU64(text);
        } catch (const std::invalid_argument &) {
            fatal("bad value for ", flag, ": '", text, "'");
        }
    }
    return parseCountValue(flag, text,
                           std::numeric_limits<uint64_t>::max());
}

const fault::InjectionPolicy &
parsePolicyName(const std::string &name)
{
    try {
        return fault::resolveInjectionPolicy(name);
    } catch (const std::invalid_argument &error) {
        fatal(error.what());
    }
}

unsigned
parseGangWidthValue(const std::string &flag, const std::string &text)
{
    if (text == "auto")
        return fault::GANG_WIDTH_AUTO;
    unsigned width = parseCount32(flag, text);
    if (width > sim::GangSimulator::MAX_LANES)
        fatal(flag, " must be 'auto' or 0..",
              sim::GangSimulator::MAX_LANES, ", got '", text, "'");
    return width;
}

void
parseShardSpec(const std::string &text, unsigned &index,
               unsigned &count)
{
    size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size())
        fatal("--shard expects i/N, got '", text, "'");
    index = parseCount32("--shard", text.substr(0, slash));
    count = parseCount32("--shard", text.substr(slash + 1));
    if (count == 0 || index >= count)
        fatal("--shard index must satisfy 0 <= i < N, got '", text,
              "'");
}

BenchOptions
parseBenchArgs(int argc, char **argv)
try {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto valueOf = [&](const std::string &flag)
            -> std::optional<std::string> {
            if (arg == flag) {
                if (i + 1 >= argc)
                    fatal(flag, " expects a value");
                return std::string(argv[++i]);
            }
            if (arg.rfind(flag + "=", 0) == 0)
                return arg.substr(flag.size() + 1);
            return std::nullopt;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (auto threads = valueOf("--threads")) {
            opts.threads = parseCount32("--threads", *threads);
        } else if (auto trials = valueOf("--trials")) {
            opts.trials = parseCount32("--trials", *trials);
            if (opts.trials == 0)
                fatal("--trials must be >= 1 (omit the flag for the "
                      "driver default)");
        } else if (auto policy = valueOf("--policy")) {
            opts.policies.push_back(parsePolicyName(*policy).name);
        } else if (auto interval = valueOf("--checkpoint-interval")) {
            opts.checkpointInterval =
                parseCountValue("--checkpoint-interval", *interval,
                                std::numeric_limits<uint64_t>::max());
        } else if (auto seed = valueOf("--seed")) {
            opts.seed = parseSeedValue("--seed", *seed);
        } else if (auto dir = valueOf("--cache-dir")) {
            if (dir->empty())
                fatal("--cache-dir expects a directory");
            opts.cacheDir = *dir;
        } else if (arg == "--no-cache") {
            opts.noCache = true;
        } else if (arg == "--static-prune") {
            opts.staticPrune = true;
        } else if (auto gang = valueOf("--gang-width")) {
            opts.gangWidth = parseGangWidthValue("--gang-width", *gang);
        } else if (auto shard = valueOf("--shard")) {
            parseShardSpec(*shard, opts.shardIndex, opts.shardCount);
        } else if (auto trace = valueOf("--trace-out")) {
            if (trace->empty())
                fatal("--trace-out expects a file path");
            opts.traceOut = *trace;
        } else {
            fatal("unknown argument '", arg, "'");
        }
    }
    if (opts.sharded() && (opts.cacheDir.empty() || opts.noCache))
        fatal("--shard requires --cache-dir (the stripe's results "
              "must be persisted somewhere)");
    // Enable tracing right here so every bench driver gets it for
    // free; the singleton flushes on process exit.
    if (!opts.traceOut.empty())
        telemetry::Tracer::instance().open(opts.traceOut);
    return opts;
} catch (const FatalError &error) {
    std::cerr << argv[0] << ": " << error.what() << '\n';
    usage(argv[0], 2);
}

void
emitCellJson(const std::string &workloadName, const std::string &policy,
             unsigned errors, const CellSummary &cell,
             const core::StudyConfig &config)
{
    std::ostringstream line;
    line.setf(std::ios::fixed);
    line.precision(4);
    line << "BENCH_JSON {"
         << "\"workload\":\"" << workloadName << "\","
         << "\"policy\":\"" << policy << "\","
         << "\"errors\":" << errors << ","
         << "\"trials\":" << cell.trials << ","
         << "\"completed\":" << cell.completed << ","
         << "\"wall_s\":" << cell.wallSeconds << ","
         << "\"trials_per_sec\":" << cell.trialsPerSecond() << ","
         << "\"total_instructions\":" << cell.totalInstructions << ","
         << "\"trials_pruned\":" << cell.trialsPruned << ","
         << "\"checkpoint_interval\":" << config.checkpointInterval << ","
         << "\"static_prune\":" << (config.staticPrune ? "true" : "false")
         << ","
         // The width the runner actually used: gangs only engage on
         // the checkpointed fast path.
         << "\"gang_width\":"
         << (config.checkpointInterval > 0
                 ? fault::CampaignRunner::resolveGangWidth(
                       config.gangWidth)
                 : 0)
         << ","
         << "\"threads\":" << config.threads << "}";
    // stderr, with the progress lines: stdout holds only reproduced
    // results and must stay byte-identical across thread counts and
    // checkpoint settings, which wall-clock telemetry never is.
    std::cerr << line.str() << std::endl;
}

std::vector<SweepPoint>
runSweep(const workloads::Workload &workload,
         core::ErrorToleranceStudy &study, const SweepConfig &config)
{
    std::vector<SweepPoint> points;
    if (config.shardCount > 0) {
        // Stripe mode: compute and persist this process's share of
        // every cell; rendering happens once all stripes are stored.
        for (unsigned errors : config.errorCounts) {
            for (const auto &policy : config.policies) {
                inform(workload.name(), ": errors=", errors, " shard ",
                       config.shardIndex, "/", config.shardCount, " (",
                       policy, ")");
                study.runCellShard(errors, policy, config.trials,
                                   config.shardIndex,
                                   config.shardCount);
            }
        }
        return points;
    }
    for (unsigned errors : config.errorCounts) {
        SweepPoint point;
        point.errors = errors;
        for (const auto &policy : config.policies) {
            inform(workload.name(), ": errors=", errors, " (", policy,
                   ", ", config.trials, " trials)");
            auto cell = study.runCell(errors, policy, config.trials);
            emitCellJson(workload.name(), policy, errors, cell,
                         study.config());
            point.cells.push_back(std::move(cell));
        }
        points.push_back(std::move(point));
    }
    return points;
}

void
banner(std::ostream &os, const std::string &experiment,
       const std::string &caption)
{
    os << '\n'
       << "==========================================================\n"
       << experiment << '\n'
       << caption << '\n'
       << "==========================================================\n";
}

void
banner(const std::string &experiment, const std::string &caption)
{
    banner(std::cout, experiment, caption);
}

namespace {

/** Series marker of policy index @p i (stable, cycling). */
char
seriesMarker(size_t i)
{
    static const char markers[] = {'o', 'x', '+', '*', '#', '@', '%',
                                   '~'};
    return markers[i % sizeof(markers)];
}

/** The registry chart label of @p policy (the name if unregistered:
 *  stores may hold cells of policies this process never saw). */
std::string
chartLabelOf(const std::string &policy)
{
    if (const auto *registered = fault::findInjectionPolicy(policy))
        return registered->chartLabel;
    return policy;
}

} // namespace

void
printFigure(std::ostream &os, const std::string &title,
            const std::string &yLabel,
            const std::vector<std::string> &policies,
            const std::vector<SweepPoint> &points,
            const std::function<double(const CellSummary &)> &fidelityOf,
            double threshold)
{
    Table table({"errors", "policy", "trials", "completed", "% failed",
                 "95% CI", "fidelity"});
    for (const auto &p : points) {
        for (size_t i = 0; i < policies.size(); ++i) {
            const auto &cell = p.cell(i);
            auto ci = wilsonInterval(cell.crashed + cell.timedOut,
                                     cell.trials);
            std::string ciText = "[";
            ciText += formatPercent(ci.low);
            ciText += ", ";
            ciText += formatPercent(ci.high);
            ciText += "]";
            table.addRow({
                i == 0 ? std::to_string(p.errors) : "",
                policies[i],
                std::to_string(cell.trials),
                std::to_string(cell.completed),
                formatPercent(cell.failureRate()),
                ciText,
                formatDouble(fidelityOf(cell)),
            });
        }
    }
    table.print(os);

    AsciiChart fidelityChart(title, "errors inserted", yLabel);
    for (size_t i = 0; i < policies.size(); ++i) {
        Series series;
        series.name = chartLabelOf(policies[i]);
        series.marker = seriesMarker(i);
        for (const auto &p : points) {
            series.xs.push_back(p.errors);
            series.ys.push_back(fidelityOf(p.cell(i)));
        }
        fidelityChart.addSeries(series);
    }
    if (!std::isnan(threshold))
        fidelityChart.setThreshold(threshold, "fidelity threshold");
    os << '\n';
    fidelityChart.print(os);

    AsciiChart failChart(title + " -- catastrophic failures",
                         "errors inserted", "% failed runs");
    for (size_t i = 0; i < policies.size(); ++i) {
        Series series;
        series.name = "failures (" + policies[i] + ")";
        series.marker = seriesMarker(i);
        for (const auto &p : points) {
            series.xs.push_back(p.errors);
            series.ys.push_back(100.0 * p.cell(i).failureRate());
        }
        failChart.addSeries(series);
    }
    os << '\n';
    failChart.print(os);
}

void
printFigure(const std::string &title, const std::string &yLabel,
            const std::vector<std::string> &policies,
            const std::vector<SweepPoint> &points,
            const std::function<double(const CellSummary &)> &fidelityOf,
            double threshold)
{
    printFigure(std::cout, title, yLabel, policies, points, fidelityOf,
                threshold);
}

} // namespace etc::bench
