#include "bench/common.hh"

#include <cmath>
#include <iostream>

#include "support/logging.hh"
#include "support/stats.hh"

namespace etc::bench {

using core::CellSummary;
using core::ProtectionMode;

std::vector<SweepPoint>
runSweep(const workloads::Workload &workload,
         core::ErrorToleranceStudy &study, const SweepConfig &config)
{
    std::vector<SweepPoint> points;
    for (unsigned errors : config.errorCounts) {
        SweepPoint point;
        point.errors = errors;
        inform(workload.name(), ": errors=", errors, " (protected, ",
               config.trials, " trials)");
        point.protectedCell =
            study.runCell(errors, ProtectionMode::Protected,
                          config.trials);
        if (config.runUnprotected) {
            inform(workload.name(), ": errors=", errors,
                   " (unprotected)");
            point.hasUnprotected = true;
            point.unprotectedCell =
                study.runCell(errors, ProtectionMode::Unprotected,
                              config.trials);
        }
        points.push_back(std::move(point));
    }
    return points;
}

void
banner(const std::string &experiment, const std::string &caption)
{
    std::cout << '\n'
              << "==========================================================\n"
              << experiment << '\n'
              << caption << '\n'
              << "==========================================================\n";
}

void
printFigure(const std::string &title, const std::string &yLabel,
            const std::vector<SweepPoint> &points,
            const std::function<double(const CellSummary &)> &fidelityOf,
            double threshold)
{
    Table table({"errors", "trials", "completed", "% failed",
                 "95% CI", "fidelity (protected)", "% failed (unprot)",
                 "fidelity (unprot)"});
    for (const auto &p : points) {
        const auto &cell = p.protectedCell;
        auto ci = wilsonInterval(cell.crashed + cell.timedOut,
                                 cell.trials);
        table.addRow({
            std::to_string(p.errors),
            std::to_string(cell.trials),
            std::to_string(cell.completed),
            formatPercent(cell.failureRate()),
            "[" + formatPercent(ci.low) + ", " +
                formatPercent(ci.high) + "]",
            formatDouble(fidelityOf(cell)),
            p.hasUnprotected
                ? formatPercent(p.unprotectedCell.failureRate())
                : "-",
            p.hasUnprotected
                ? formatDouble(fidelityOf(p.unprotectedCell))
                : "-",
        });
    }
    table.print(std::cout);

    AsciiChart fidelityChart(title, "errors inserted", yLabel);
    Series prot;
    prot.name = "static analysis ON";
    prot.marker = 'o';
    Series unprot;
    unprot.name = "static analysis OFF";
    unprot.marker = 'x';
    for (const auto &p : points) {
        prot.xs.push_back(p.errors);
        prot.ys.push_back(fidelityOf(p.protectedCell));
        if (p.hasUnprotected) {
            unprot.xs.push_back(p.errors);
            unprot.ys.push_back(fidelityOf(p.unprotectedCell));
        }
    }
    fidelityChart.addSeries(prot);
    if (!unprot.xs.empty())
        fidelityChart.addSeries(unprot);
    if (!std::isnan(threshold))
        fidelityChart.setThreshold(threshold, "fidelity threshold");
    std::cout << '\n';
    fidelityChart.print(std::cout);

    AsciiChart failChart(title + " -- catastrophic failures",
                         "errors inserted", "% failed runs");
    Series failProt;
    failProt.name = "failures (protected)";
    failProt.marker = 'o';
    Series failUnprot;
    failUnprot.name = "failures (unprotected)";
    failUnprot.marker = 'x';
    for (const auto &p : points) {
        failProt.xs.push_back(p.errors);
        failProt.ys.push_back(100.0 * p.protectedCell.failureRate());
        if (p.hasUnprotected) {
            failUnprot.xs.push_back(p.errors);
            failUnprot.ys.push_back(
                100.0 * p.unprotectedCell.failureRate());
        }
    }
    failChart.addSeries(failProt);
    if (!failUnprot.xs.empty())
        failChart.addSeries(failUnprot);
    std::cout << '\n';
    failChart.print(std::cout);
}

} // namespace etc::bench
