#include "bench/common.hh"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "support/logging.hh"
#include "support/stats.hh"

namespace etc::bench {

using core::CellSummary;
using core::ProtectionMode;

namespace {

[[noreturn]] void
usage(const char *program, int status)
{
    std::cerr << "usage: " << program
              << " [--threads N] [--trials N] [--checkpoint-interval N]\n"
              << "  --threads N  campaign worker threads (0 = all "
                 "cores; default 0)\n"
              << "  --trials N   trials per campaign cell (0 = driver "
                 "default)\n"
              << "  --checkpoint-interval N  instructions between "
                 "golden-run checkpoints\n"
              << "               (0 disables trial fast-forwarding; "
                 "default "
              << fault::CampaignRunner::DEFAULT_CHECKPOINT_INTERVAL
              << "). Results are identical either way.\n";
    std::exit(status);
}

uint64_t
parseCount64(const char *program, const std::string &flag,
             const std::string &text, uint64_t max)
{
    try {
        // Digits only: std::stoull would accept a leading '-' and wrap.
        if (text.empty() ||
            text.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument(text);
        size_t pos = 0;
        unsigned long long value = std::stoull(text, &pos, 10);
        if (pos != text.size() || value > max)
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        std::cerr << program << ": bad value for " << flag << ": '"
                  << text << "'\n";
        usage(program, 2);
    }
}

unsigned
parseCount(const char *program, const std::string &flag,
           const std::string &text)
{
    return static_cast<unsigned>(parseCount64(
        program, flag, text, std::numeric_limits<unsigned>::max()));
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto valueOf = [&](const std::string &flag)
            -> std::optional<std::string> {
            if (arg == flag) {
                if (i + 1 >= argc) {
                    std::cerr << argv[0] << ": " << flag
                              << " expects a value\n";
                    usage(argv[0], 2);
                }
                return std::string(argv[++i]);
            }
            if (arg.rfind(flag + "=", 0) == 0)
                return arg.substr(flag.size() + 1);
            return std::nullopt;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (auto threads = valueOf("--threads")) {
            opts.threads = parseCount(argv[0], "--threads", *threads);
        } else if (auto trials = valueOf("--trials")) {
            opts.trials = parseCount(argv[0], "--trials", *trials);
        } else if (auto interval = valueOf("--checkpoint-interval")) {
            opts.checkpointInterval =
                parseCount64(argv[0], "--checkpoint-interval", *interval,
                             std::numeric_limits<uint64_t>::max());
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    return opts;
}

void
emitCellJson(const std::string &workloadName, const std::string &mode,
             unsigned errors, const CellSummary &cell,
             const core::StudyConfig &config)
{
    std::ostringstream line;
    line.setf(std::ios::fixed);
    line.precision(4);
    line << "BENCH_JSON {"
         << "\"workload\":\"" << workloadName << "\","
         << "\"mode\":\"" << mode << "\","
         << "\"errors\":" << errors << ","
         << "\"trials\":" << cell.trials << ","
         << "\"completed\":" << cell.completed << ","
         << "\"wall_s\":" << cell.wallSeconds << ","
         << "\"trials_per_sec\":" << cell.trialsPerSecond() << ","
         << "\"total_instructions\":" << cell.totalInstructions << ","
         << "\"checkpoint_interval\":" << config.checkpointInterval << ","
         << "\"threads\":" << config.threads << "}";
    // stderr, with the progress lines: stdout holds only reproduced
    // results and must stay byte-identical across thread counts and
    // checkpoint settings, which wall-clock telemetry never is.
    std::cerr << line.str() << std::endl;
}

std::vector<SweepPoint>
runSweep(const workloads::Workload &workload,
         core::ErrorToleranceStudy &study, const SweepConfig &config)
{
    std::vector<SweepPoint> points;
    for (unsigned errors : config.errorCounts) {
        SweepPoint point;
        point.errors = errors;
        inform(workload.name(), ": errors=", errors, " (protected, ",
               config.trials, " trials)");
        point.protectedCell =
            study.runCell(errors, ProtectionMode::Protected,
                          config.trials);
        emitCellJson(workload.name(), "protected", errors,
                     point.protectedCell, study.config());
        if (config.runUnprotected) {
            inform(workload.name(), ": errors=", errors,
                   " (unprotected)");
            point.hasUnprotected = true;
            point.unprotectedCell =
                study.runCell(errors, ProtectionMode::Unprotected,
                              config.trials);
            emitCellJson(workload.name(), "unprotected", errors,
                         point.unprotectedCell, study.config());
        }
        points.push_back(std::move(point));
    }
    return points;
}

void
banner(const std::string &experiment, const std::string &caption)
{
    std::cout << '\n'
              << "==========================================================\n"
              << experiment << '\n'
              << caption << '\n'
              << "==========================================================\n";
}

void
printFigure(const std::string &title, const std::string &yLabel,
            const std::vector<SweepPoint> &points,
            const std::function<double(const CellSummary &)> &fidelityOf,
            double threshold)
{
    Table table({"errors", "trials", "completed", "% failed",
                 "95% CI", "fidelity (protected)", "% failed (unprot)",
                 "fidelity (unprot)"});
    for (const auto &p : points) {
        const auto &cell = p.protectedCell;
        auto ci = wilsonInterval(cell.crashed + cell.timedOut,
                                 cell.trials);
        table.addRow({
            std::to_string(p.errors),
            std::to_string(cell.trials),
            std::to_string(cell.completed),
            formatPercent(cell.failureRate()),
            "[" + formatPercent(ci.low) + ", " +
                formatPercent(ci.high) + "]",
            formatDouble(fidelityOf(cell)),
            p.hasUnprotected
                ? formatPercent(p.unprotectedCell.failureRate())
                : "-",
            p.hasUnprotected
                ? formatDouble(fidelityOf(p.unprotectedCell))
                : "-",
        });
    }
    table.print(std::cout);

    AsciiChart fidelityChart(title, "errors inserted", yLabel);
    Series prot;
    prot.name = "static analysis ON";
    prot.marker = 'o';
    Series unprot;
    unprot.name = "static analysis OFF";
    unprot.marker = 'x';
    for (const auto &p : points) {
        prot.xs.push_back(p.errors);
        prot.ys.push_back(fidelityOf(p.protectedCell));
        if (p.hasUnprotected) {
            unprot.xs.push_back(p.errors);
            unprot.ys.push_back(fidelityOf(p.unprotectedCell));
        }
    }
    fidelityChart.addSeries(prot);
    if (!unprot.xs.empty())
        fidelityChart.addSeries(unprot);
    if (!std::isnan(threshold))
        fidelityChart.setThreshold(threshold, "fidelity threshold");
    std::cout << '\n';
    fidelityChart.print(std::cout);

    AsciiChart failChart(title + " -- catastrophic failures",
                         "errors inserted", "% failed runs");
    Series failProt;
    failProt.name = "failures (protected)";
    failProt.marker = 'o';
    Series failUnprot;
    failUnprot.name = "failures (unprotected)";
    failUnprot.marker = 'x';
    for (const auto &p : points) {
        failProt.xs.push_back(p.errors);
        failProt.ys.push_back(100.0 * p.protectedCell.failureRate());
        if (p.hasUnprotected) {
            failUnprot.xs.push_back(p.errors);
            failUnprot.ys.push_back(
                100.0 * p.unprotectedCell.failureRate());
        }
    }
    failChart.addSeries(failProt);
    if (!failUnprot.xs.empty())
        failChart.addSeries(failUnprot);
    std::cout << '\n';
    failChart.print(std::cout);
}

} // namespace etc::bench
