/**
 * @file
 * Figure 5 reproduction: GSM signal-to-noise ratio of the decoded
 * output (vs. the fault-free decode) as errors are inserted, plus the
 * failure series. Paper shape: only ~2 dB of signal lost at 20 errors,
 * ~7 dB at 40; essentially no catastrophic failures with protection.
 */

#include <iostream>
#include <limits>

#include "bench/common.hh"
#include "support/logging.hh"
#include "workloads/gsm.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Figure 5",
                  "GSM: SNR vs. fault-free decode and % failed "
                  "executions vs. errors inserted");

    workloads::GsmWorkload workload(
        workloads::GsmWorkload::scaled(workloads::Scale::Bench));
    core::StudyConfig config;
    opts.applyTo(config);
    core::ErrorToleranceStudy study(workload, config);

    bench::SweepConfig sweep;
    sweep.errorCounts = {1, 5, 10, 20, 30, 40};
    sweep.trials = opts.trialsOr(25);
    sweep.runUnprotected = true;
    auto points = bench::runSweep(workload, study, sweep);

    bench::printFigure(
        "Figure 5: GSM", "SNR (dB) vs fault-free output", points,
        [](const core::CellSummary &cell) { return cell.meanFidelity(); },
        std::numeric_limits<double>::quiet_NaN());
    return 0;
}
