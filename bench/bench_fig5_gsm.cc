/**
 * @file
 * Figure 5 reproduction: GSM signal-to-noise ratio of the decoded
 * output (vs. the fault-free decode) as errors are inserted, plus the
 * failure series. Paper shape: only ~2 dB of signal lost at 20 errors,
 * ~7 dB at 40; essentially no catastrophic failures with protection.
 *
 * Sweep data lives in the experiments registry ("fig5"), shared with
 * the etc_lab CLI: cells persist to --cache-dir, stored cells are
 * skipped, and --shard i/N computes one trial stripe per process.
 */

#include "bench/figure_main.hh"

int
main(int argc, char **argv)
{
    return etc::bench::figureMain("fig5", argc, argv);
}
