/**
 * @file
 * Table 1 reproduction: the application <-> fidelity-measure summary,
 * extended with measured baseline statistics (program size, golden
 * dynamic instructions, golden fidelity == perfect).
 */

#include <iostream>

#include "bench/common.hh"
#include "sim/simulator.hh"

using namespace etc;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv);
    bench::banner("Table 1",
                  "Summary of applications and their fidelity measures");

    Table table({"Application", "Fidelity measure", "static instrs",
                 "dynamic instrs", "golden fidelity"});
    for (const auto &name : workloads::workloadNames()) {
        auto workload = workloads::createWorkload(name,
                                                  workloads::Scale::Bench);
        sim::Simulator sim(workload->program());
        auto run = sim.run();
        if (!run.completed()) {
            std::cerr << name << ": golden run failed: "
                      << run.toString() << '\n';
            return 1;
        }
        auto score =
            workload->scoreFidelity(sim.output(), sim.output());
        table.addRow({
            name,
            workload->fidelityMeasure(),
            std::to_string(workload->program().size()),
            std::to_string(run.instructions),
            formatDouble(score.value) + " " + score.unit +
                (score.acceptable ? " (ok)" : " (BAD)"),
        });
    }
    table.print(std::cout);
    return 0;
}
