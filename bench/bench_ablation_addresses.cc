/**
 * @file
 * Ablation A: protecting memory-address operands.
 *
 * The paper's Section 3 analysis propagates CVar only from control
 * instructions; corrupted address arithmetic is one source of its
 * residual with-protection failures. This ablation turns address
 * protection on (treating load/store base registers as control-like)
 * and measures the trade-off: a smaller taggable fraction in exchange
 * for a lower residual failure rate.
 */

#include <iostream>

#include "bench/common.hh"
#include "support/logging.hh"

using namespace etc;
using fault::PROTECTED_POLICY;
using fault::UNPROTECTED_POLICY;

int
main(int argc, char **argv)
{
    auto opts = bench::parseBenchArgs(argc, argv);
    bench::banner("Ablation A: address protection",
                  "CVar with vs. without treating addresses as "
                  "control-like (DESIGN.md ablation index)");

    constexpr unsigned TRIALS = 30;
    Table table({"Algorithm", "Errors", "mode", "% dyn tagged",
                 "% fail (protected)"});

    for (const char *name : {"adpcm", "blowfish", "mcf"}) {
        auto workload =
            workloads::createWorkload(name, workloads::Scale::Bench);
        unsigned errors = std::string(name) == "mcf" ? 50 : 30;
        for (bool protectAddresses : {false, true}) {
            core::StudyConfig config;
            opts.applyTo(config);
            config.trials = opts.trialsOr(TRIALS);
            config.protection.protectAddresses = protectAddresses;
            core::ErrorToleranceStudy study(*workload, config);
            inform("ablation-addresses: ", name,
                   " protectAddresses=", protectAddresses);
            auto cell = study.runCell(errors, PROTECTED_POLICY);
            bench::emitCellJson(name, protectAddresses
                                          ? "protected+addresses"
                                          : "protected",
                                errors, cell, study.config());
            table.addRow({
                name,
                std::to_string(errors),
                protectAddresses ? "paper + addresses" : "paper",
                formatPercent(study.profile().taggedFraction()),
                formatPercent(cell.failureRate()),
            });
        }
    }
    table.print(std::cout);
    std::cout << "\n(expected: address protection lowers both the "
                 "tagged fraction and the residual failure rate)\n";
    return 0;
}
