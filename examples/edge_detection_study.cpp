/**
 * @file
 * Example: visual error tolerance of SUSAN edge detection.
 *
 * Runs the susan workload through increasing error counts with the
 * control-data protection on, writes the fault-free and the most
 * degraded edge maps as PGM images (viewable with any image tool),
 * and prints the PSNR ladder -- a miniature of the paper's Figure 1
 * that you can *look at*.
 *
 * Build & run:  ./build/examples/edge_detection_study
 * Output:       susan_golden.pgm, susan_errors_<n>.pgm
 */

#include <fstream>
#include <iostream>

#include "core/study.hh"
#include "workloads/susan.hh"

using namespace etc;

namespace {

void
writePgm(const std::string &path, unsigned width, unsigned height,
         const std::vector<uint8_t> &pixels)
{
    std::ofstream out(path, std::ios::binary);
    out << "P5\n" << width << ' ' << height << "\n255\n";
    out.write(reinterpret_cast<const char *>(pixels.data()),
              static_cast<std::streamsize>(pixels.size()));
    std::cout << "wrote " << path << " (" << width << "x" << height
              << ")\n";
}

} // namespace

int
main()
{
    workloads::SusanWorkload workload(
        workloads::SusanWorkload::scaled(workloads::Scale::Bench));
    const unsigned width = workload.params().width - 4;
    const unsigned height = workload.params().height - 4;

    core::StudyConfig config;
    config.trials = 8;
    core::ErrorToleranceStudy study(workload, config);
    writePgm("susan_golden.pgm", width, height, study.goldenOutput());

    std::cout << "\nerrors  mean PSNR (dB)  acceptable (>= "
              << workload.params().fidelityThresholdDb << " dB)\n";
    for (unsigned errors : {50u, 200u, 800u, 3200u}) {
        auto cell =
            study.runCell(errors, core::ProtectionMode::Protected);
        std::cout << errors << "\t" << cell.meanFidelity() << "\t\t"
                  << static_cast<int>(100 * cell.acceptableRate())
                  << "%\n";
    }

    // Render one corrupted output for inspection: rerun a single trial
    // at a heavy error count and dump its edge map.
    auto heavy = study.runCell(3200, core::ProtectionMode::Protected, 1);
    if (heavy.completed == 1) {
        // Reconstruct the trial output by rerunning the same seed.
        auto injectable = fault::injectableWithProtection(
            workload.program(), study.protection().tagged);
        fault::CampaignRunner runner(workload.program(),
                                     std::move(injectable));
        fault::CampaignConfig campaign;
        campaign.trials = 1;
        campaign.errors = 3200;
        campaign.seed = config.seed ^ (uint64_t{3200} << 32) ^ 0x1;
        auto result = runner.run(campaign);
        if (result.completed == 1) {
            auto out = result.outcomes.front().output;
            out.resize(static_cast<size_t>(width) * height, 0);
            writePgm("susan_errors_3200.pgm", width, height, out);
        }
    }
    std::cout << "\nCompare the two .pgm files: edges survive thousands "
                 "of data errors because control stays protected.\n";
    return 0;
}
