/**
 * @file
 * explore: a command-line driver over the whole library.
 *
 *   explore <workload> [options]         analyze a built-in workload
 *   explore --asm <file.s> [options]     analyze an assembly file
 *
 * Options:
 *   --disasm          print the tagged disassembly listing
 *   --loops           print the natural-loop report (tagged vs
 *                     protected instructions per loop)
 *   --errors <n>      run a fault-injection cell with n errors
 *   --trials <n>      trials for the campaign cell (default 20)
 *   --unprotected     inject without control protection
 *   --strict-memory   bounds-checked memory instead of lenient
 *   --trace [n]       print the last n retired instructions of a
 *                     fault-free run (default 32)
 *
 * Examples:
 *   ./build/examples/explore susan --loops
 *   ./build/examples/explore mcf --errors 20 --trials 30
 *   ./build/examples/explore --asm my_kernel.s --disasm
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/control_protection.hh"
#include "analysis/dominators.hh"
#include "asm/assembler.hh"
#include "core/study.hh"
#include "sim/tracer.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

using namespace etc;

namespace {

struct Options
{
    std::string workload;
    std::string asmFile;
    bool disasm = false;
    bool loops = false;
    bool unprotected = false;
    bool strictMemory = false;
    unsigned errors = 0;
    unsigned trials = 20;
    bool runCampaign = false;
    unsigned trace = 0;
};

int
usage()
{
    std::cerr << "usage: explore <workload>|--asm <file.s> "
                 "[--disasm] [--loops] [--errors N] [--trials N] "
                 "[--unprotected] [--strict-memory]\n  workloads: ";
    for (const auto &name : workloads::workloadNames())
        std::cerr << name << ' ';
    std::cerr << '\n';
    return 2;
}

void
printLoopReport(const assembly::Program &program,
                const analysis::ProtectionResult &protection)
{
    analysis::FlowGraph graph(program, true);
    analysis::DominatorTree doms(graph, program.entry);
    auto loops = analysis::findNaturalLoops(graph, doms);

    Table table({"loop header", "function", "size", "tagged",
                 "protected ALU"});
    for (const auto &loop : loops) {
        unsigned tagged = 0, protectedAlu = 0;
        for (uint32_t i : loop.body) {
            if (protection.tagged[i])
                ++tagged;
            else if (program.code[i].isAlu())
                ++protectedAlu;
        }
        std::string function = "?";
        if (auto fn = program.functionContaining(loop.header))
            function = program.functions[*fn].name;
        table.addRow({
            std::to_string(loop.header),
            function,
            std::to_string(loop.body.size()),
            std::to_string(tagged),
            std::to_string(protectedAlu),
        });
    }
    std::cout << "\nnatural loops (" << loops.size() << "):\n";
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                exit(2);
            }
            return argv[++i];
        };
        if (arg == "--asm")
            options.asmFile = next();
        else if (arg == "--disasm")
            options.disasm = true;
        else if (arg == "--loops")
            options.loops = true;
        else if (arg == "--unprotected")
            options.unprotected = true;
        else if (arg == "--strict-memory")
            options.strictMemory = true;
        else if (arg == "--trace")
            options.trace = (i + 1 < argc && argv[i + 1][0] != '-')
                                ? static_cast<unsigned>(
                                      std::stoul(next()))
                                : 32;
        else if (arg == "--errors") {
            options.errors = static_cast<unsigned>(std::stoul(next()));
            options.runCampaign = true;
        } else if (arg == "--trials")
            options.trials = static_cast<unsigned>(std::stoul(next()));
        else if (!arg.empty() && arg[0] != '-' &&
                 options.workload.empty())
            options.workload = arg;
        else
            return usage();
    }
    if (options.workload.empty() == options.asmFile.empty())
        return usage();

    try {
        // Resolve the program + eligibility.
        std::unique_ptr<workloads::Workload> workload;
        assembly::Program assembled;
        const assembly::Program *program = nullptr;
        std::set<std::string> eligible;
        if (!options.workload.empty()) {
            workload = workloads::createWorkload(options.workload);
            program = &workload->program();
            eligible = workload->eligibleFunctions();
        } else {
            std::ifstream in(options.asmFile);
            if (!in) {
                std::cerr << "cannot open " << options.asmFile << '\n';
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            assembled = assembly::assemble(text.str());
            program = &assembled;
        }

        // Static analysis.
        analysis::ProtectionConfig protectionConfig;
        protectionConfig.eligibleFunctions = eligible;
        auto protection =
            analysis::computeControlProtection(*program,
                                               protectionConfig);
        std::cout << "program: " << program->size()
                  << " instructions, " << program->functions.size()
                  << " functions\n"
                  << "static: " << protection.numTagged << "/"
                  << protection.numAlu
                  << " ALU instructions tagged low-reliability\n";

        if (options.disasm) {
            std::cout << "\ntagged listing (* = low-reliability):\n";
            for (uint32_t i = 0; i < program->size(); ++i)
                std::cout << (protection.tagged[i] ? " * " : "   ")
                          << "[" << i << "] "
                          << program->code[i].toString() << '\n';
        }
        if (options.loops)
            printLoopReport(*program, protection);
        if (options.trace) {
            sim::Simulator simulator(*program);
            sim::Tracer tracer(options.trace);
            auto run = simulator.run(0, &tracer);
            std::cout << "\ntrace (" << run.toString() << "):\n";
            tracer.print(std::cout);
        }

        // Dynamic profile + optional campaign (workloads only -- an
        // .s file has no fidelity scorer).
        if (workload) {
            core::StudyConfig config;
            config.trials = options.trials;
            if (options.strictMemory)
                config.memoryModel = sim::MemoryModel::Strict;
            core::ErrorToleranceStudy study(*workload, config);
            std::cout << "\ndynamic: "
                      << study.goldenInstructions() << " instructions, "
                      << formatPercent(study.profile().taggedFraction())
                      << " tagged (low-reliability)\n";
            if (options.runCampaign) {
                auto mode = options.unprotected
                                ? core::ProtectionMode::Unprotected
                                : core::ProtectionMode::Protected;
                auto cell = study.runCell(options.errors, mode);
                std::cout << "\ncampaign: " << options.errors
                          << " errors x " << cell.trials << " trials ("
                          << (options.unprotected ? "unprotected"
                                                  : "protected")
                          << ")\n  completed " << cell.completed
                          << ", crashed " << cell.crashed
                          << ", timed out " << cell.timedOut << " ("
                          << formatPercent(cell.failureRate())
                          << " catastrophic)\n";
                if (!cell.fidelities.empty()) {
                    std::cout << "  mean fidelity "
                              << formatDouble(cell.meanFidelity()) << ' '
                              << cell.fidelities.front().unit << ", "
                              << formatPercent(cell.acceptableRate())
                              << " of trials acceptable\n";
                }
            }
        }
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}
