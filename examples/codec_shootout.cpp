/**
 * @file
 * Example: which speech codec degrades more gracefully on unreliable
 * hardware -- ADPCM or the GSM-style LPC codec?
 *
 * This is the embedded-domain question the paper's introduction
 * motivates: perceptual applications can absorb data errors, so how
 * much of each codec could run on cheap, error-prone silicon? The
 * example contrasts:
 *
 *   - the *fraction* of each codec that is low-reliability-eligible
 *     (ADPCM ~90% -- predicated data flow; GSM ~20% -- branchy
 *     encoder decisions), and
 *   - the output quality (SNR vs. the fault-free decode) as errors
 *     are injected into that eligible fraction.
 *
 * Build & run:  ./build/examples/codec_shootout
 */

#include <iostream>

#include "core/study.hh"
#include "fidelity/metrics.hh"
#include "support/table.hh"
#include "workloads/adpcm.hh"
#include "workloads/gsm.hh"

using namespace etc;

namespace {

double
snrVsGolden(const std::vector<uint8_t> &golden,
            const std::vector<uint8_t> &test)
{
    return fidelity::snrDb(fidelity::asInt16(golden),
                           fidelity::asInt16(test));
}

} // namespace

int
main()
{
    workloads::AdpcmWorkload adpcm(
        workloads::AdpcmWorkload::scaled(workloads::Scale::Bench));
    workloads::GsmWorkload gsm(
        workloads::GsmWorkload::scaled(workloads::Scale::Bench));

    core::StudyConfig config;
    config.trials = 20;
    core::ErrorToleranceStudy adpcmStudy(adpcm, config);
    core::ErrorToleranceStudy gsmStudy(gsm, config);

    std::cout << "low-reliability-eligible dynamic instructions:\n"
              << "  adpcm: "
              << formatPercent(adpcmStudy.profile().taggedFraction())
              << "   gsm: "
              << formatPercent(gsmStudy.profile().taggedFraction())
              << "\n\n";

    Table table({"errors", "codec", "% failed", "SNR vs clean (dB)"});
    for (unsigned errors : {2u, 8u, 32u}) {
        for (auto *entry :
             {static_cast<core::ErrorToleranceStudy *>(&adpcmStudy),
              static_cast<core::ErrorToleranceStudy *>(&gsmStudy)}) {
            auto cell =
                entry->runCell(errors, core::ProtectionMode::Protected);
            // Mean SNR of completed trials against the golden decode.
            double snrSum = 0.0;
            unsigned counted = 0;
            // CellSummary already carries the workload metric; for a
            // like-for-like comparison compute SNR for both codecs.
            // (adpcm's own metric is byte similarity.)
            auto injectable = fault::injectableWithProtection(
                entry->workload().program(),
                entry->protection().tagged);
            fault::CampaignRunner runner(entry->workload().program(),
                                         std::move(injectable));
            fault::CampaignConfig campaign;
            campaign.trials = config.trials;
            campaign.errors = errors;
            campaign.seed = config.seed ^ (uint64_t{errors} << 32) ^ 0x1;
            auto rerun = runner.run(campaign);
            for (const auto &outcome : rerun.outcomes) {
                if (!outcome.run.completed())
                    continue;
                snrSum += snrVsGolden(runner.goldenOutput(),
                                      outcome.output);
                ++counted;
            }
            table.addRow({
                std::to_string(errors),
                entry->workload().name(),
                formatPercent(cell.failureRate()),
                counted ? formatDouble(snrSum / counted) : "-",
            });
        }
    }
    table.print(std::cout);
    std::cout << "\nReading: ADPCM exposes 4x more of its execution to "
                 "cheap hardware, at the cost of steeper SNR loss per "
                 "error; GSM protects its control-heavy encoder and "
                 "degrades more gently.\n";
    return 0;
}
