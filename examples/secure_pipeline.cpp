/**
 * @file
 * Example: an encrypt-store-decrypt pipeline on unreliable hardware.
 *
 * Blowfish is the interesting stress case for control-data protection:
 * its data path tolerates bit errors gracefully (one corrupted block =
 * eight wrong bytes), but its key schedule and S-box addressing do
 * not. This example runs the pipeline at increasing error rates in
 * three configurations and reports failure rates and plaintext
 * recovery:
 *
 *   1. paper protection      (CVar tags, addresses unprotected)
 *   2. hardened protection   (CVar + address operands protected)
 *   3. no protection         (everything injectable)
 *
 * Build & run:  ./build/examples/secure_pipeline
 */

#include <iostream>

#include "core/study.hh"
#include "support/table.hh"
#include "workloads/blowfish.hh"

using namespace etc;

int
main()
{
    workloads::BlowfishWorkload workload(
        workloads::BlowfishWorkload::scaled(workloads::Scale::Bench));
    std::cout << "plaintext bytes: " << workload.plaintext().size()
              << ", program: " << workload.program().size()
              << " instructions\n\n";

    core::StudyConfig paper;
    paper.trials = 15;
    core::StudyConfig hardened = paper;
    hardened.protection.protectAddresses = true;

    core::ErrorToleranceStudy paperStudy(workload, paper);
    core::ErrorToleranceStudy hardenedStudy(workload, hardened);

    Table table({"errors", "config", "% failed", "% bytes recovered"});
    for (unsigned errors : {4u, 16u, 64u}) {
        struct Row
        {
            const char *label;
            core::ErrorToleranceStudy *study;
            core::ProtectionMode mode;
        };
        const Row rows[] = {
            {"paper protection", &paperStudy,
             core::ProtectionMode::Protected},
            {"hardened (+addresses)", &hardenedStudy,
             core::ProtectionMode::Protected},
            {"no protection", &paperStudy,
             core::ProtectionMode::Unprotected},
        };
        for (const Row &row : rows) {
            auto cell = row.study->runCell(errors, row.mode);
            table.addRow({
                std::to_string(errors),
                row.label,
                formatPercent(cell.failureRate()),
                formatPercent(cell.meanFidelity()),
            });
        }
    }
    table.print(std::cout);
    std::cout << "\nReading: with control (and optionally address) "
                 "protection the pipeline degrades by isolated blocks; "
                 "without it, runs crash or garble the whole stream.\n";
    return 0;
}
