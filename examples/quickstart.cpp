/**
 * @file
 * Quickstart: the whole pipeline on ten lines of assembly.
 *
 *  1. assemble a small program from text;
 *  2. run the CVar static analysis and print the tagged listing;
 *  3. execute fault-free;
 *  4. inject one bit flip into a tagged (data) result and into a
 *     protected-equivalent (control) result, and compare outcomes.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "analysis/control_protection.hh"
#include "asm/assembler.hh"
#include "fault/injection.hh"
#include "sim/simulator.hh"

using namespace etc;

namespace {

constexpr const char *SOURCE = R"(
# Sum 1..10 into $t1 while counting down $t0 -- the counter feeds the
# branch (control), the sum only feeds the output (data).
        .text
        .func main
main:   li   $t0, 10
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        outw $t1
        halt
        .endfunc
)";

uint32_t
outputWord(const sim::Simulator &sim)
{
    const auto &bytes = sim.output();
    uint32_t word = 0;
    for (size_t i = 0; i < 4 && i < bytes.size(); ++i)
        word |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    return word;
}

} // namespace

int
main()
{
    // 1. Assemble.
    auto program = assembly::assemble(SOURCE);

    // 2. Static analysis: which results may run on unreliable hardware?
    auto protection =
        analysis::computeControlProtection(program,
                                           analysis::ProtectionConfig{});
    std::cout << "Tagged listing (* = low-reliability, injectable):\n";
    for (uint32_t i = 0; i < program.size(); ++i) {
        std::cout << (protection.tagged[i] ? "  * " : "    ")
                  << "[" << i << "] " << program.code[i].toString()
                  << '\n';
    }

    // 3. Fault-free run.
    sim::Simulator simulator(program);
    auto golden = simulator.run();
    std::cout << "\nfault-free: " << golden.toString()
              << ", output = " << outputWord(simulator) << "\n";

    // 4a. Flip a bit in a *tagged* result (the running sum): the
    // program completes with a wrong-but-usable answer.
    {
        auto injectable =
            fault::injectableWithProtection(program, protection.tagged);
        fault::InjectionPlan plan;
        plan.sites = {4}; // the 5th tagged dynamic result
        plan.masks = {1u << 3};
        fault::Injector injector(injectable, plan);
        simulator.reset();
        auto run = simulator.run(0, &injector);
        std::cout << "data flip:  " << run.toString()
                  << ", output = " << outputWord(simulator)
                  << "  (degraded, not catastrophic)\n";
    }

    // 4b. Flip a bit in a *control* result (the loop branch's PC):
    // catastrophic, exactly what the analysis protects against.
    {
        auto injectable = fault::injectableWithoutProtection(program);
        std::vector<bool> branchOnly(program.size(), false);
        for (uint32_t i = 0; i < program.size(); ++i)
            branchOnly[i] = program.code[i].isControl();
        fault::InjectionPlan plan;
        plan.sites = {2};
        plan.masks = {1u << 7};
        fault::Injector injector(branchOnly, plan);
        simulator.reset();
        auto run = simulator.run(10000, &injector);
        std::cout << "ctrl flip:  " << run.toString()
                  << "  (catastrophic)\n";
    }
    return 0;
}
